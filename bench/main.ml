(* Benchmark harness: regenerates every figure of the paper (printing the
   same rows/series the paper plots) and then times one representative unit
   of work per experiment with Bechamel.

   Run: dune exec bench/main.exe
   Flags:
     --no-bechamel          skip the micro-benchmarks
     --quick                skip the figure regeneration and use a short
                            Bechamel quota (the CI smoke configuration)
     --json FILE            write the timings as JSON rows (Bench_json)
     --baseline FILE        compare against a previous --json file...
     --max-regression PCT   ...and exit 1 if any benchmark got more than
                            PCT percent slower (default 50) *)

open Bechamel
open Bechamel.Toolkit

let experiments () =
  let ppf = Format.std_formatter in
  Format.fprintf ppf "================================================@.";
  Format.fprintf ppf "colcache: paper experiment regeneration@.";
  Format.fprintf ppf "================================================@.@.";
  Colcache.Experiments.run_all ppf;
  Format.pp_print_flush ppf ()

(* Reduced-size workloads so each Bechamel sample stays small; the full-size
   runs are the printed series above. *)

let bench_fig3 () = ignore (Colcache.Experiments.Fig3.run ())

let mpeg =
  lazy
    (Colcache.Pipeline.make ~init:Workloads.Mpeg.init
       ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       Workloads.Mpeg.program)

let bench_fig4_routine proc () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_partitioned t ~proc ~scratchpad_columns:2
       ~meth:Colcache.Pipeline.Profile_based)

let bench_fig4d () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_static_app t ~procs:Workloads.Mpeg.routines
       ~scratchpad_columns:2 ~meth:Colcache.Pipeline.Profile_based)

let bench_fig5 () =
  ignore
    (Colcache.Experiments.Fig5.run ~quanta:[ 1024 ] ~cache_kbs:[ 16 ]
       ~input_len:2048 ())

let bench_ablation_policy () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_partitioned t ~proc:"plus" ~scratchpad_columns:1
       ~meth:Colcache.Pipeline.Profile_based)

let bench_ablation_columns () =
  ignore (Colcache.Experiments.Ablation_columns.run ~columns_list:[ 2 ] ())

let bench_ablation_weights () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_partitioned t ~proc:"dequant" ~scratchpad_columns:1
       ~meth:Colcache.Pipeline.Program_analysis)

let bench_ablation_tlb () =
  ignore
    (Colcache.Experiments.Ablation_tlb.run ~quanta:[ 4096 ] ~sizes:[ 32 ]
       ~input_len:2048 ())

let bench_ablation_grouping () =
  ignore (Colcache.Experiments.Ablation_grouping.run ())

let bench_ablation_page_coloring () =
  ignore (Colcache.Experiments.Ablation_page_coloring.run ())

let bench_ablation_l2 () = ignore (Colcache.Experiments.Ablation_l2.run ())

let bench_ablation_prefetch () =
  ignore (Colcache.Experiments.Ablation_prefetch.run ())

let bench_generality () = ignore (Colcache.Experiments.Generality.run ())

let bench_ablation_optimizer () =
  ignore (Ir.Optimize.optimize Workloads.Mpeg.program)

(* One differential-oracle scenario, fixed ahead of time so every sample
   replays identical work (generation excluded from the timed region). *)
let check_scenario =
  lazy (Check.Gen.scenario ~max_events:160 (Check.Prng.create ~seed:7))

let bench_check () =
  match Check.Diff.run_scenario (Lazy.force check_scenario) with
  | Check.Diff.Agree -> ()
  | Check.Diff.Diverge _ -> failwith "bench: differential divergence"

(* --- simulator hot path -------------------------------------------------
   The raw cache replay cost, isolated from layout/VM/scheduling: the
   Figure 5 job-A workload (LZ77, 12 KiB of input) against the Figure 5
   cache geometry (16 KB, 8-way, LRU). [hot_access] replays it one access
   at a time through the general entry point; [hot_access_trace] replays it
   through the batched [Sassoc.access_trace] loop. Each bench reuses one
   cache and flushes it per run: under LRU a flushed cache replays the trace
   exactly like a fresh one (empty ways always win victim selection, and
   every stamp consulted later is rewritten first), so runs are identical
   work with no per-run allocation muddying the timing. These rows carry
   accesses_per_sec in the JSON output; the regression harness watches them
   the closest. *)

let hot_trace = lazy (Workloads.Lz77.trace ~seed:1 ~input_len:12288 ~base:0 ())

let hot_cache () =
  Cache.Sassoc.create
    (Cache.Sassoc.config ~line_size:16 ~size_bytes:(16 * 1024) ~ways:8 ())

let hot_cache_access = lazy (hot_cache ())
let hot_cache_trace = lazy (hot_cache ())

let bench_hot_access () =
  let cache = Lazy.force hot_cache_access in
  Cache.Sassoc.flush cache;
  Memtrace.Trace.iter
    (fun a -> ignore (Cache.Sassoc.access_record cache a))
    (Lazy.force hot_trace)

let bench_hot_access_trace () =
  let cache = Lazy.force hot_cache_trace in
  Cache.Sassoc.flush cache;
  Cache.Sassoc.access_trace cache (Lazy.force hot_trace)

(* --- whole-system replay ------------------------------------------------
   The same LZ77 workload replayed through the full machine model — TLB,
   tint resolution, timing — not just the bare cache. [sys_replay_scalar]
   drives [System.run], one boxed access at a time; [sys_replay_batched]
   drives [System.run_packed] over the columnar trace, the page-crossing
   memoized loop the experiments use. Per run the cache and TLB are
   flushed: under LRU a flushed machine replays the trace exactly like a
   fresh one, so every sample is identical work. The batched/scalar ratio
   of these two rows is the headline number for the columnar replay
   path. *)

let sys_config () =
  Machine.System.config
    (Cache.Sassoc.config ~line_size:16 ~size_bytes:(16 * 1024) ~ways:8 ())

let hot_packed = lazy (Workloads.Lz77.packed_trace ~seed:1 ~input_len:12288 ~base:0 ())
let sys_scalar = lazy (Machine.System.create (sys_config ()))
let sys_batched = lazy (Machine.System.create (sys_config ()))

let bench_sys_replay_scalar () =
  let sys = Lazy.force sys_scalar in
  Machine.System.flush_cache sys;
  Machine.System.flush_tlb sys;
  ignore (Machine.System.run sys (Lazy.force hot_trace))

let bench_sys_replay_batched () =
  let sys = Lazy.force sys_batched in
  Machine.System.flush_cache sys;
  Machine.System.flush_tlb sys;
  ignore (Machine.System.run_packed sys (Lazy.force hot_packed))

(* --- stack-distance engine ----------------------------------------------
   The single-pass sweep machinery on the same workloads. [mrc_histogram]
   replays the LZ77 packed trace through one fresh Stack_dist engine and
   reads the miss curve — the one pass that prices every associativity 1..8
   of the Figure 5 geometry at once (compare against sys_replay_batched,
   which prices exactly one configuration per replay). [mrc_per_tag] runs
   the per-variable split the MRC allocator consumes, one engine per
   interned tag of the hot-walk trace. A fresh engine per run keeps every
   sample identical work (Stack_dist has state but no flush). *)

let bench_mrc_histogram () =
  let engine =
    Cache.Stack_dist.create ~line_size:16 ~sets:128 ~max_ways:8 ()
  in
  Cache.Stack_dist.access_packed engine (Lazy.force hot_packed);
  ignore (Cache.Stack_dist.miss_curve engine)

(* The set-sharded parallel pass over the same trace and geometry:
   [mrc_parallel_j1] prices the sharding scaffolding itself (chunked
   streaming + merge, no domains spawned), j2/j4 add worker domains. On a
   single-core container the wall-clock win is bounded; the per-shard
   engine-access split (roughly 1/jobs each) is asserted by the
   [mrc_scaling] experiment and test suite instead. *)
let bench_mrc_parallel jobs () =
  ignore
    (Cache.Stack_dist.of_packed_parallel ~jobs ~line_size:16 ~sets:128
       ~max_ways:8 (Lazy.force hot_packed))

(* The rolling-window engine over the same trace: one observe per access
   plus O(max_ways) epoch seals, read out once at the end — the per-access
   overhead the online allocator pays versus the one-shot engine. *)
let bench_mrc_windowed () =
  let engine =
    Cache.Stack_dist.Windowed.create ~window:4096 ~epochs:8 ~line_size:16
      ~sets:128 ~max_ways:8 ()
  in
  Cache.Stack_dist.Windowed.observe_packed engine (Lazy.force hot_packed);
  ignore (Cache.Stack_dist.Windowed.mrc_now engine)

let hot_walk_packed =
  lazy
    (let t =
       Colcache.Pipeline.make ~init:Workloads.Kernels.init
         ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
         (Workloads.Kernels.hot_walk ~hot_elems:192 ~passes:20)
     in
     Colcache.Pipeline.packed_trace_of t ~proc:"hot_walk")

let bench_mrc_per_tag () =
  ignore
    (Cache.Stack_dist.per_tag_of_packed ~line_size:16 ~sets:32 ~max_ways:4
       (Lazy.force hot_walk_packed))

(* --- sampled stack distances / out-of-core replay -----------------------
   [mrc_sampled_lz77] and [mrc_sampled_zipf] replay the same traces as the
   exact engines but through the SHARDS-style set-sampled estimator — the
   speedup over [mrc_histogram] is what sampling buys, and the JSON rows
   carry the observed mean absolute miss-ratio error against the exact
   curve (computed once, outside the timed region) so a throughput win
   bought by a broken estimate shows up in the baseline diff.
   [sys_replay_mmap] is [sys_replay_batched] with the packed trace mapped
   from a file instead of resident — the page-cache-backed out-of-core
   path the large-trace smoke job uses. *)

let zipf_packed =
  lazy
    (Workloads.Gen.emit ~seed:13 ~n:65536
       (Workloads.Gen.Zipf { items = 8192; theta = 0.99 }))
      .Workloads.Gen.packed

let bench_mrc_sampled_lz77 () =
  let engine =
    Cache.Stack_dist.Sampled.create ~rate:0.1 ~line_size:16 ~sets:128
      ~max_ways:8 ()
  in
  Cache.Stack_dist.Sampled.access_packed engine (Lazy.force hot_packed);
  ignore (Cache.Stack_dist.Sampled.mrc_est engine)

let bench_mrc_sampled_zipf () =
  let engine =
    Cache.Stack_dist.Sampled.create ~rate:0.1 ~line_size:16 ~sets:128
      ~max_ways:8 ()
  in
  Cache.Stack_dist.Sampled.access_packed engine (Lazy.force zipf_packed);
  ignore (Cache.Stack_dist.Sampled.mrc_est engine)

(* Observed estimator error for the JSON rows: mean absolute miss-ratio
   error over associativities 1..8, sampled (as benched above) vs exact. *)
let sampled_error packed =
  let exact = Cache.Stack_dist.create ~line_size:16 ~sets:128 ~max_ways:8 () in
  Cache.Stack_dist.access_packed exact packed;
  let sampled =
    Cache.Stack_dist.Sampled.create ~rate:0.1 ~line_size:16 ~sets:128
      ~max_ways:8 ()
  in
  Cache.Stack_dist.Sampled.access_packed sampled packed;
  let mrc = Cache.Stack_dist.mrc exact in
  let est = Cache.Stack_dist.Sampled.mrc_est sampled in
  let sum = ref 0. in
  for a = 1 to 8 do
    sum := !sum +. abs_float (est.(a) -. mrc.(a))
  done;
  !sum /. 8.

let sample_errors () =
  [
    ("colcache/mrc_sampled_lz77", sampled_error (Lazy.force hot_packed));
    ("colcache/mrc_sampled_zipf", sampled_error (Lazy.force zipf_packed));
  ]

let mmap_packed =
  lazy
    (let path = Filename.temp_file "colcache_bench" ".pk" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     Memtrace.Packed.write_file path (Lazy.force hot_packed);
     Memtrace.Packed.map_file path)

let sys_mmap = lazy (Machine.System.create (sys_config ()))

let bench_sys_replay_mmap () =
  let sys = Lazy.force sys_mmap in
  Machine.System.flush_cache sys;
  Machine.System.flush_tlb sys;
  ignore (Machine.System.run_packed sys (Lazy.force mmap_packed))

(* --- static WCET analysis -----------------------------------------------
   [wcet_analysis] times one full abstract interpretation of the hot-walk
   kernel (fixpoint must/may/persistence analysis plus the per-site miss
   bounds); its accesses/sec divides the kernel's replay length by the
   analysis time — the cost of bounding an access statically next to the
   cost of simulating it ([hot_access]). [wcet_alloc] times the min-max
   column allocator over per-task bound curves built once outside the
   timed region. *)

let wcet_geometry ways = { Ir.Cache_analysis.line_size = 16; sets = 32; ways }

let bench_wcet_analysis () =
  ignore
    (Ir.Cache_analysis.analyze (wcet_geometry 4)
       (Workloads.Kernels.hot_walk ~hot_elems:192 ~passes:20)
       ~proc:"hot_walk")

let wcet_curves =
  lazy
    (let p = Workloads.Kernels.hot_walk ~hot_elems:192 ~passes:20 in
     let base =
       Array.init 9 (fun c ->
           match
             (Ir.Cache_analysis.analyze (wcet_geometry c) p ~proc:"hot_walk")
               .Ir.Cache_analysis.wcet_misses
           with
           | Some b -> float_of_int b
           | None -> infinity)
     in
     List.init 6 (fun i ->
         ( Printf.sprintf "task%d" i,
           Array.map (fun v -> v *. float_of_int (1 + i)) base )))

let bench_wcet_alloc () =
  ignore (Layout.Wcet_alloc.allocate ~columns:12 (Lazy.force wcet_curves))

(* --- workload generators ------------------------------------------------
   [gen_zipf] times the traffic-shaped generator itself: 32 K Zipf samples
   (harmonic-CDF binary search per draw) emitted into a packed trace.
   [kv_requests] times the per-request latency-accounting replay path:
   a fixed synthetic KV-store trace (hash probe + value walk per request)
   replayed through [System.run_packed_requests], which is [run_packed]
   plus window bookkeeping and the latency histogram build. Both rows carry
   accesses_per_sec. *)

let bench_gen_zipf () =
  ignore
    (Workloads.Gen.emit ~seed:11 ~n:32768
       (Workloads.Gen.Zipf { items = 4096; theta = 0.99 }))

let kv_trace =
  lazy
    (Workloads.Gen.kv ~seed:11 ~requests:2048 ~keys:512 ~buckets:128
       ~value_lines:4 ())

let kv_system = lazy (Machine.System.create (sys_config ()))

let bench_kv_requests () =
  let sys = Lazy.force kv_system in
  Machine.System.flush_cache sys;
  Machine.System.flush_tlb sys;
  let tr = Lazy.force kv_trace in
  ignore
    (Machine.System.run_packed_requests sys tr.Workloads.Gen.packed
       ~requests:tr.Workloads.Gen.requests)

(* --- event-driven core / multitask domains ------------------------------
   [sys_replay_events] is [sys_replay_batched] under the event-driven
   timing core (MSHRs + banked DRAM): identical functional work, so the
   ratio of the two rows is the pricing overhead of the event engine.
   [multitask_serial] and [multitask_domains] replay three LZ77 jobs with
   private systems through the epoch scheduler on one vs three worker
   domains — same outcome by construction, so the row ratio is the
   parallel speedup the host's cores actually deliver. *)

let sys_events = lazy (Machine.System.create (sys_config ()))

let bench_sys_replay_events () =
  let sys = Lazy.force sys_events in
  Machine.System.flush_cache sys;
  Machine.System.flush_tlb sys;
  ignore
    (Machine.System.run_packed_events sys ~events:Machine.Event.default_config
       (Lazy.force hot_packed))

let mt_jobs =
  lazy
    (List.map
       (fun (name, seed, base) ->
         {
           Sched.Epoch.name;
           packed = Workloads.Lz77.packed_trace ~seed ~input_len:4096 ~base ();
         })
       [ ("A", 1, 0x000000); ("B", 2, 0x100000); ("C", 3, 0x200000) ])

let mt_system (_ : Sched.Epoch.job) =
  Machine.System.create
    (Machine.System.config
       (Cache.Sassoc.config ~line_size:16 ~size_bytes:4096 ~ways:4 ()))

let bench_multitask jobs () =
  ignore
    (Sched.Epoch.run ~jobs ~epoch_accesses:4096 ~make_system:mt_system
       (Lazy.force mt_jobs))

(* Access counts for the accesses_per_sec column, keyed by full row name.
   Only benches whose sample replays a fixed trace get a count: one
   run_partitioned/run_static_app sample replays its routine's trace once
   (the layout work around it is memoized in the pipeline), the differential
   scenario has a fixed access count, and the hot-path/system/stack-distance
   rows replay their traces whole. Multi-configuration experiment rows
   (fig3, fig5, the ablation sweeps) replay several traces per sample, so no
   single count describes them. *)
let access_counts () =
  let n = float_of_int (Memtrace.Trace.length (Lazy.force hot_trace)) in
  let t = Lazy.force mpeg in
  let routine proc =
    float_of_int
      (Memtrace.Packed.length (Colcache.Pipeline.packed_trace_of t ~proc))
  in
  let fig4d =
    List.fold_left (fun acc p -> acc +. routine p) 0. Workloads.Mpeg.routines
  in
  [
    ("colcache/hot_access", n);
    ("colcache/hot_access_trace", n);
    ("colcache/sys_replay_scalar", n);
    ("colcache/sys_replay_batched", n);
    ("colcache/sys_replay_mmap", n);
    ("colcache/sys_replay_events", n);
    ( "colcache/multitask_serial",
      float_of_int
        (List.fold_left
           (fun acc (j : Sched.Epoch.job) ->
             acc + Memtrace.Packed.length j.Sched.Epoch.packed)
           0 (Lazy.force mt_jobs)) );
    ( "colcache/multitask_domains",
      float_of_int
        (List.fold_left
           (fun acc (j : Sched.Epoch.job) ->
             acc + Memtrace.Packed.length j.Sched.Epoch.packed)
           0 (Lazy.force mt_jobs)) );
    ("colcache/mrc_histogram", n);
    ("colcache/mrc_parallel_j1", n);
    ("colcache/mrc_parallel_j2", n);
    ("colcache/mrc_parallel_j4", n);
    ("colcache/mrc_windowed", n);
    ("colcache/mrc_sampled_lz77", n);
    ( "colcache/mrc_sampled_zipf",
      float_of_int (Memtrace.Packed.length (Lazy.force zipf_packed)) );
    ( "colcache/mrc_per_tag",
      float_of_int (Memtrace.Packed.length (Lazy.force hot_walk_packed)) );
    ( "colcache/wcet_analysis",
      float_of_int (Memtrace.Packed.length (Lazy.force hot_walk_packed)) );
    ("colcache/fig4a_dequant", routine "dequant");
    ("colcache/fig4b_plus", routine "plus");
    ("colcache/fig4c_idct", routine "idct");
    ("colcache/fig4d_combined", fig4d);
    ("colcache/ablation_policy", routine "plus");
    ("colcache/ablation_weights", routine "dequant");
    ( "colcache/check_differential",
      float_of_int (Check.Scenario.accesses (Lazy.force check_scenario)) );
    ("colcache/gen_zipf", 32768.);
    ( "colcache/kv_requests",
      float_of_int
        (Memtrace.Packed.length (Lazy.force kv_trace).Workloads.Gen.packed) );
  ]

let tests =
  Test.make_grouped ~name:"colcache"
    [
      Test.make ~name:"hot_access" (Staged.stage bench_hot_access);
      Test.make ~name:"hot_access_trace" (Staged.stage bench_hot_access_trace);
      Test.make ~name:"sys_replay_scalar" (Staged.stage bench_sys_replay_scalar);
      Test.make ~name:"sys_replay_batched" (Staged.stage bench_sys_replay_batched);
      Test.make ~name:"sys_replay_mmap" (Staged.stage bench_sys_replay_mmap);
      Test.make ~name:"sys_replay_events" (Staged.stage bench_sys_replay_events);
      Test.make ~name:"multitask_serial" (Staged.stage (bench_multitask 1));
      Test.make ~name:"multitask_domains" (Staged.stage (bench_multitask 3));
      Test.make ~name:"mrc_histogram" (Staged.stage bench_mrc_histogram);
      Test.make ~name:"mrc_parallel_j1" (Staged.stage (bench_mrc_parallel 1));
      Test.make ~name:"mrc_parallel_j2" (Staged.stage (bench_mrc_parallel 2));
      Test.make ~name:"mrc_parallel_j4" (Staged.stage (bench_mrc_parallel 4));
      Test.make ~name:"mrc_windowed" (Staged.stage bench_mrc_windowed);
      Test.make ~name:"mrc_sampled_lz77" (Staged.stage bench_mrc_sampled_lz77);
      Test.make ~name:"mrc_sampled_zipf" (Staged.stage bench_mrc_sampled_zipf);
      Test.make ~name:"mrc_per_tag" (Staged.stage bench_mrc_per_tag);
      Test.make ~name:"wcet_analysis" (Staged.stage bench_wcet_analysis);
      Test.make ~name:"wcet_alloc" (Staged.stage bench_wcet_alloc);
      Test.make ~name:"gen_zipf" (Staged.stage bench_gen_zipf);
      Test.make ~name:"kv_requests" (Staged.stage bench_kv_requests);
      Test.make ~name:"fig3_tint_remap" (Staged.stage bench_fig3);
      Test.make ~name:"fig4a_dequant" (Staged.stage (bench_fig4_routine "dequant"));
      Test.make ~name:"fig4b_plus" (Staged.stage (bench_fig4_routine "plus"));
      Test.make ~name:"fig4c_idct" (Staged.stage (bench_fig4_routine "idct"));
      Test.make ~name:"fig4d_combined" (Staged.stage bench_fig4d);
      Test.make ~name:"fig5_multitask" (Staged.stage bench_fig5);
      Test.make ~name:"ablation_policy" (Staged.stage bench_ablation_policy);
      Test.make ~name:"ablation_columns" (Staged.stage bench_ablation_columns);
      Test.make ~name:"ablation_weights" (Staged.stage bench_ablation_weights);
      Test.make ~name:"ablation_tlb" (Staged.stage bench_ablation_tlb);
      Test.make ~name:"ablation_grouping" (Staged.stage bench_ablation_grouping);
      Test.make ~name:"ablation_page_coloring"
        (Staged.stage bench_ablation_page_coloring);
      Test.make ~name:"ablation_l2" (Staged.stage bench_ablation_l2);
      Test.make ~name:"ablation_prefetch" (Staged.stage bench_ablation_prefetch);
      Test.make ~name:"generality_jpeg" (Staged.stage bench_generality);
      Test.make ~name:"ablation_optimizer" (Staged.stage bench_ablation_optimizer);
      Test.make ~name:"check_differential" (Staged.stage bench_check);
    ]

let run_bechamel ~quick () =
  (* The figure regeneration above leaves a large, fragmented major heap;
     collect it once so its GC debt is not billed to the first benchmarks. *)
  Gc.compact ();
  let instances = [ Instance.monotonic_clock ] in
  let quota = if quick then Time.second 0.25 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:50 ~quota ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let counts = access_counts () in
  let errors = sample_errors () in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let est =
          match Analyze.OLS.estimates o with
          | Some [ e ] -> e
          | Some _ | None -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.printf "@.Bechamel timings (monotonic clock):@.";
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Format.printf "  %-40s (no estimate)@." name
      else
        match List.assoc_opt name counts with
        | Some n when est > 0. ->
            Format.printf "  %-40s %12.0f ns/run  %11.0f accesses/sec@." name
              est
              (n /. (est *. 1e-9))
        | _ -> Format.printf "  %-40s %12.0f ns/run@." name est)
    rows;
  (* JSON rows: drop benches Bechamel produced no estimate for rather than
     writing NaN (not JSON) or a fake zero. *)
  List.filter_map
    (fun (name, est) ->
      if Float.is_nan est then None
      else
        let accesses_per_sec =
          match List.assoc_opt name counts with
          | Some n when est > 0. -> n /. (est *. 1e-9)
          | _ -> 0.
        in
        Some
          {
            Colcache.Bench_json.name;
            ns_per_run = est;
            accesses_per_sec;
            sample_error = List.assoc_opt name errors;
          })
    rows

(* --- argument parsing ---------------------------------------------------- *)

type opts = {
  quick : bool;
  no_bechamel : bool;
  json : string option;
  baseline : string option;
  max_regression : float;
}

let usage () =
  prerr_endline
    "usage: bench/main.exe [--quick] [--no-bechamel] [--json FILE]\n\
    \       [--baseline FILE] [--max-regression PCT]";
  exit 2

let parse_args () =
  let rec go opts = function
    | [] -> opts
    | "--quick" :: rest -> go { opts with quick = true } rest
    | "--no-bechamel" :: rest -> go { opts with no_bechamel = true } rest
    | "--json" :: file :: rest -> go { opts with json = Some file } rest
    | "--baseline" :: file :: rest -> go { opts with baseline = Some file } rest
    | "--max-regression" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0. -> go { opts with max_regression = p } rest
        | _ -> usage ())
    | _ -> usage ()
  in
  go
    {
      quick = false;
      no_bechamel = false;
      json = None;
      baseline = None;
      max_regression = 50.;
    }
    (List.tl (Array.to_list Sys.argv))

let () =
  let opts = parse_args () in
  if not opts.quick then experiments ();
  if opts.no_bechamel then begin
    if opts.json <> None || opts.baseline <> None then begin
      prerr_endline "bench: --json/--baseline need the Bechamel run";
      exit 2
    end
  end
  else begin
    let rows = run_bechamel ~quick:opts.quick () in
    (match opts.json with
    | None -> ()
    | Some path ->
        Colcache.Bench_json.write ~path rows;
        Format.printf "wrote %d benchmark rows to %s@." (List.length rows) path);
    match opts.baseline with
    | None -> ()
    | Some path ->
        let baseline = Colcache.Bench_json.read ~path in
        let regs =
          Colcache.Bench_json.regressions ~baseline ~current:rows
            ~max_pct:opts.max_regression
        in
        if regs = [] then
          Format.printf "no regressions over %.0f%% against %s (%d rows)@."
            opts.max_regression path (List.length baseline)
        else begin
          Format.printf "REGRESSIONS over %.0f%% against %s:@."
            opts.max_regression path;
          List.iter
            (fun r ->
              Format.printf "  %a@." Colcache.Bench_json.pp_regression r)
            regs;
          exit 1
        end
  end
