(* Tests for the virtual-memory substrate: tints, tint table, page table,
   TLB staleness semantics and the Figure 3 remap cost comparison. *)

module Bitmask = Cache.Bitmask
module Tint = Vm.Tint
module Tint_table = Vm.Tint_table
module Page_table = Vm.Page_table
module Tlb = Vm.Tlb
module Mapping = Vm.Mapping

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mask = Alcotest.testable Bitmask.pp Bitmask.equal

(* --- Tint --- *)

let test_tint_equality () =
  check_bool "same name equal" true (Tint.equal (Tint.make "blue") (Tint.make "blue"));
  check_bool "default is red" true (Tint.equal Tint.default (Tint.make "red"));
  check_bool "empty rejected" true
    (try ignore (Tint.make ""); false with Invalid_argument _ -> true)

(* --- Tint_table --- *)

let test_tint_table_default_full () =
  let t = Tint_table.create ~columns:4 in
  Alcotest.check mask "unmapped tint resolves to all columns"
    (Bitmask.full ~n:4)
    (Tint_table.lookup t (Tint.make "anything"))

let test_tint_table_set_lookup () =
  let t = Tint_table.create ~columns:4 in
  let blue = Tint.make "blue" in
  Tint_table.set t blue (Bitmask.singleton 1);
  Alcotest.check mask "mapped" (Bitmask.singleton 1) (Tint_table.lookup t blue);
  check_bool "mem" true (Tint_table.mem t blue);
  check_int "one write" 1 (Tint_table.writes t);
  Tint_table.remove t blue;
  Alcotest.check mask "back to full" (Bitmask.full ~n:4) (Tint_table.lookup t blue);
  check_int "remove counted" 2 (Tint_table.writes t)

let test_tint_table_rejects_bad_masks () =
  let t = Tint_table.create ~columns:4 in
  check_bool "empty mask" true
    (try Tint_table.set t Tint.default Bitmask.empty; false
     with Invalid_argument _ -> true);
  check_bool "out-of-range column" true
    (try Tint_table.set t Tint.default (Bitmask.singleton 7); false
     with Invalid_argument _ -> true)

(* --- Page_table --- *)

let test_page_table_addressing () =
  let pt = Page_table.create ~page_size:256 () in
  check_int "page of addr" 3 (Page_table.page_of_addr pt 777);
  check_int "base of page" 768 (Page_table.base_of_page pt 3);
  check_bool "non-pow2 rejected" true
    (try ignore (Page_table.create ~page_size:100 ()); false
     with Invalid_argument _ -> true)

let test_page_table_tints () =
  let pt = Page_table.create ~page_size:256 () in
  let blue = Tint.make "blue" in
  check_bool "default tint initially" true
    (Tint.equal (Page_table.tint_of_page pt 5) Tint.default);
  Page_table.set_tint pt ~page:5 blue;
  check_bool "tinted" true (Tint.equal (Page_table.tint_of_page pt 5) blue);
  check_bool "addr resolves" true
    (Tint.equal (Page_table.tint_of_addr pt (5 * 256)) blue);
  check_int "one pte write" 1 (Page_table.pte_writes pt);
  Alcotest.(check (list int)) "pages_with_tint" [ 5 ] (Page_table.pages_with_tint pt blue)

let test_page_table_region () =
  let pt = Page_table.create ~page_size:256 () in
  let green = Tint.make "green" in
  (* region straddling pages 1..3 *)
  let n = Page_table.set_tint_region pt ~base:300 ~size:600 green in
  check_int "three pages" 3 n;
  check_int "three pte writes" 3 (Page_table.pte_writes pt);
  Alcotest.(check (list int)) "pages" [ 1; 2; 3 ] (Page_table.pages_with_tint pt green)

let test_page_table_default_reset () =
  let pt = Page_table.create ~page_size:256 () in
  Page_table.set_tint pt ~page:2 (Tint.make "blue");
  Page_table.set_tint pt ~page:2 Tint.default;
  check_int "no explicit entries left" 0 (Page_table.entries pt)

(* --- TLB --- *)

let make_mapping () = Mapping.create ~tlb_entries:4 ~page_size:256 ~columns:4 ()

let test_tlb_hit_miss () =
  let m = make_mapping () in
  let tlb = Mapping.tlb m in
  let _, o1 = Tlb.lookup tlb 0 in
  let _, o2 = Tlb.lookup tlb 16 in
  (* same page *)
  check_bool "first is miss" true (o1 = Tlb.Miss);
  check_bool "second is hit" true (o2 = Tlb.Hit);
  check_int "hits" 1 (Tlb.hits tlb);
  check_int "misses" 1 (Tlb.misses tlb)

let test_tlb_capacity_eviction () =
  let m = make_mapping () in
  let tlb = Mapping.tlb m in
  (* touch 5 distinct pages; capacity is 4 -> page 0 evicted *)
  for p = 0 to 4 do
    ignore (Tlb.lookup_page tlb p)
  done;
  check_int "resident" 4 (List.length (Tlb.resident_pages tlb));
  let _, o = Tlb.lookup_page tlb 0 in
  check_bool "page 0 was evicted" true (o = Tlb.Miss)

let test_tlb_staleness () =
  (* A re-tinted page keeps serving the stale tint until flushed: the
     behaviour that forces Section 2.2's flush requirement. *)
  let m = make_mapping () in
  let tlb = Mapping.tlb m in
  let pt = Mapping.page_table m in
  let blue = Tint.make "blue" in
  ignore (Tlb.lookup_page tlb 1);
  Page_table.set_tint pt ~page:1 blue;
  let tint, _ = Tlb.lookup_page tlb 1 in
  check_bool "stale without flush" true (Tint.equal tint Tint.default);
  check_bool "flush finds entry" true (Tlb.flush_page tlb 1);
  let tint, o = Tlb.lookup_page tlb 1 in
  check_bool "fresh after flush" true (Tint.equal tint blue);
  check_bool "refetch was a miss" true (o = Tlb.Miss)

let test_tlb_full_flush () =
  let m = make_mapping () in
  let tlb = Mapping.tlb m in
  ignore (Tlb.lookup_page tlb 1);
  ignore (Tlb.lookup_page tlb 2);
  Tlb.flush tlb;
  check_int "nothing resident" 0 (List.length (Tlb.resident_pages tlb));
  check_int "flush counted" 1 (Tlb.flushes tlb)

let test_tlb_flush_mid_trace () =
  (* Hand-computed trace with a full flush in the middle:
       lookups 0,1,0,1 -> 2 misses then 2 hits;
       flush;
       lookups 0,1,0  -> 2 refetch misses then 1 hit.
     A re-tint applied while the pages sit flushed must be visible on the
     refetch without any per-page flushing. *)
  let m = make_mapping () in
  let tlb = Mapping.tlb m in
  let pt = Mapping.page_table m in
  List.iter (fun p -> ignore (Tlb.lookup_page tlb p)) [ 0; 1; 0; 1 ];
  check_int "hits before flush" 2 (Tlb.hits tlb);
  check_int "misses before flush" 2 (Tlb.misses tlb);
  Tlb.flush tlb;
  Page_table.set_tint pt ~page:0 (Tint.make "blue");
  List.iter (fun p -> ignore (Tlb.lookup_page tlb p)) [ 0; 1; 0 ];
  check_int "hits after flush" 3 (Tlb.hits tlb);
  check_int "misses after flush" 4 (Tlb.misses tlb);
  check_int "exactly one full flush" 1 (Tlb.flushes tlb);
  check_int "no per-entry flushes" 0 (Tlb.entry_flushes tlb);
  let tint, o = Tlb.lookup_page tlb 0 in
  check_bool "refetch saw the new tint" true (Tint.equal tint (Tint.make "blue"));
  check_bool "and it is now a hit" true (o = Tlb.Hit)

(* --- Mapping --- *)

let test_mapping_mask_resolution () =
  let m = make_mapping () in
  let blue = Tint.make "blue" in
  ignore (Mapping.retint_region m ~base:0 ~size:256 blue);
  Mapping.remap_tint m blue (Bitmask.singleton 2);
  let mask1, _ = Mapping.mask_of m 100 in
  Alcotest.check mask "tinted page" (Bitmask.singleton 2) mask1;
  let mask2, _ = Mapping.mask_of m 1000 in
  Alcotest.check mask "untinted page full" (Bitmask.full ~n:4) mask2

let test_mapping_remap_is_instant () =
  (* remap_tint changes the mask seen by already-TLB-resident pages without
     any PTE writes or flushes. *)
  let m = make_mapping () in
  let blue = Tint.make "blue" in
  ignore (Mapping.retint_region m ~base:0 ~size:256 blue);
  Mapping.remap_tint m blue (Bitmask.singleton 0);
  ignore (Mapping.mask_of m 0);
  (* TLB now caches page 0 -> blue *)
  let before = Mapping.cost m in
  Mapping.remap_tint m blue (Bitmask.singleton 3);
  let after = Mapping.cost m in
  let d = Mapping.cost_delta ~before ~after in
  check_int "no pte writes" 0 d.Mapping.pte_writes;
  check_int "no tlb flushes" 0 d.Mapping.tlb_entry_flushes;
  check_int "one table write" 1 d.Mapping.tint_table_writes;
  let mask', o = Mapping.mask_of m 0 in
  Alcotest.check mask "new mask visible through TLB hit" (Bitmask.singleton 3) mask';
  check_bool "served from TLB" true (o = Tlb.Hit)

let test_fig3_tints_vs_direct () =
  (* Paper Figure 3: a 20-page region initially mapped everywhere; give page
     0 its own column and exclude that column from the remaining pages.
     With tints: 1 PTE write + 2 tint-table writes. With raw bit vectors in
     PTEs: 20 PTE writes. *)
  let page_size = 256 and columns = 20 in
  let region_pages = 20 in

  (* tint scheme *)
  let m = Mapping.create ~page_size ~columns () in
  ignore
    (Mapping.retint_region m ~base:0 ~size:(region_pages * page_size) Tint.default);
  let before = Mapping.cost m in
  let blue = Tint.make "blue" in
  ignore (Mapping.retint_region m ~base:0 ~size:page_size blue);
  Mapping.remap_tint m blue (Bitmask.singleton 1);
  Mapping.remap_tint m Tint.default
    (Bitmask.complement ~n:columns (Bitmask.singleton 1));
  let d = Mapping.cost_delta ~before ~after:(Mapping.cost m) in
  check_int "tints: one PTE write" 1 d.Mapping.pte_writes;
  check_int "tints: two table writes" 2 d.Mapping.tint_table_writes;

  (* direct bit-vector scheme *)
  let dm = Vm.Direct_mapping.create ~page_size ~columns in
  ignore
    (Vm.Direct_mapping.set_mask_region dm ~base:0 ~size:(region_pages * page_size)
       (Bitmask.full ~n:columns));
  let before_writes = Vm.Direct_mapping.pte_writes dm in
  Vm.Direct_mapping.set_mask dm ~page:0 (Bitmask.singleton 1);
  ignore
    (Vm.Direct_mapping.set_mask_region dm ~base:page_size
       ~size:((region_pages - 1) * page_size)
       (Bitmask.complement ~n:columns (Bitmask.singleton 1)));
  let direct_writes = Vm.Direct_mapping.pte_writes dm - before_writes in
  check_int "direct: every PTE rewritten" region_pages direct_writes;
  (* resulting masks agree between the two schemes *)
  for page = 0 to region_pages - 1 do
    let addr = page * page_size in
    Alcotest.check mask
      (Printf.sprintf "page %d same mask" page)
      (Vm.Direct_mapping.mask_of dm addr)
      (Mapping.mask_of_quiet m addr)
  done

let test_retint_vs_remap_cost () =
  (* The paper's Section 2.2 asymmetry, hand-computed. Re-tinting pays one
     PTE write per page plus one TLB entry flush per *resident* page;
     re-mapping a tint is always a single tint-table write regardless of how
     many pages wear the tint. *)
  let m = make_mapping () in
  let tlb = Mapping.tlb m in
  let blue = Tint.make "blue" in
  (* make pages 0..2 TLB-resident; pages 4..5 stay cold *)
  List.iter (fun p -> ignore (Tlb.lookup_page tlb p)) [ 0; 1; 2 ];
  let before = Mapping.cost m in
  check_int "resident region re-tints 3 pages" 3
    (Mapping.retint_region m ~base:0 ~size:(3 * 256) blue);
  let d = Mapping.cost_delta ~before ~after:(Mapping.cost m) in
  check_int "one PTE write per page" 3 d.Mapping.pte_writes;
  check_int "one entry flush per resident page" 3 d.Mapping.tlb_entry_flushes;
  check_int "no tint-table writes" 0 d.Mapping.tint_table_writes;
  check_int "no full flushes" 0 d.Mapping.tlb_full_flushes;
  (* cold region: PTE writes still accrue, entry flushes do not *)
  let before = Mapping.cost m in
  check_int "cold region re-tints 2 pages" 2
    (Mapping.retint_region m ~base:(4 * 256) ~size:(2 * 256) blue);
  let d = Mapping.cost_delta ~before ~after:(Mapping.cost m) in
  check_int "cold pages: PTE writes" 2 d.Mapping.pte_writes;
  check_int "cold pages: no entry flushes" 0 d.Mapping.tlb_entry_flushes;
  (* remap: one table write moves all five blue pages at once *)
  let before = Mapping.cost m in
  Mapping.remap_tint m blue (Bitmask.singleton 3);
  let d = Mapping.cost_delta ~before ~after:(Mapping.cost m) in
  check_int "remap: single table write" 1 d.Mapping.tint_table_writes;
  check_int "remap: no PTE writes" 0 d.Mapping.pte_writes;
  check_int "remap: no entry flushes" 0 d.Mapping.tlb_entry_flushes;
  Alcotest.check mask "every blue page resolves to the new mask"
    (Bitmask.singleton 3)
    (Mapping.mask_of_quiet m (5 * 256))

(* --- Frame_map --- *)

let test_frame_map_identity_default () =
  let fm = Vm.Frame_map.create ~page_size:256 in
  check_int "identity translate" 0x12345 (Vm.Frame_map.translate fm 0x12345);
  check_int "identity frame" 7 (Vm.Frame_map.frame_of fm 7)

let test_frame_map_translate () =
  let fm = Vm.Frame_map.create ~page_size:256 in
  Vm.Frame_map.map_page fm ~page:2 ~frame:100;
  check_int "translated" ((100 * 256) + 17) (Vm.Frame_map.translate fm ((2 * 256) + 17));
  check_int "other pages untouched" 300 (Vm.Frame_map.translate fm 300)

let test_frame_map_collision () =
  let fm = Vm.Frame_map.create ~page_size:256 in
  Vm.Frame_map.map_page fm ~page:1 ~frame:50;
  check_bool "same frame rejected" true
    (try Vm.Frame_map.map_page fm ~page:2 ~frame:50; false
     with Invalid_argument _ -> true);
  (* re-placing the same page is fine and frees the old frame *)
  Vm.Frame_map.map_page fm ~page:1 ~frame:51;
  Vm.Frame_map.map_page fm ~page:2 ~frame:50

let test_frame_map_copy_accounting () =
  let fm = Vm.Frame_map.create ~page_size:256 in
  Vm.Frame_map.map_page fm ~page:0 ~frame:10;
  check_int "initial placement free" 0 (Vm.Frame_map.bytes_copied fm);
  Vm.Frame_map.remap_page fm ~page:0 ~frame:11;
  check_int "remap copies one page" 256 (Vm.Frame_map.bytes_copied fm);
  Vm.Frame_map.remap_page fm ~page:0 ~frame:12;
  check_int "copies accumulate" 512 (Vm.Frame_map.bytes_copied fm)

let test_frame_map_bad_page_size () =
  check_bool "non-pow2 rejected" true
    (try ignore (Vm.Frame_map.create ~page_size:100); false
     with Invalid_argument _ -> true)

(* --- properties --- *)

let prop_tlb_agrees_with_page_table =
  (* After arbitrary tint/flush operations, a TLB lookup following a flush
     always agrees with the page table. *)
  QCheck.Test.make ~name:"flushed TLB agrees with page table" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 7) bool))
    (fun ops ->
      let m = make_mapping () in
      let tlb = Mapping.tlb m in
      let pt = Mapping.page_table m in
      List.iter
        (fun (page, tintit) ->
          if tintit then
            Page_table.set_tint pt ~page (Tint.make (Printf.sprintf "t%d" (page mod 3)))
          else ignore (Tlb.lookup_page tlb page))
        ops;
      Tlb.flush tlb;
      List.for_all
        (fun page ->
          let tint, _ = Tlb.lookup_page tlb page in
          Tint.equal tint (Page_table.tint_of_page pt page))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let prop_mask_of_never_empty =
  QCheck.Test.make ~name:"mask_of never returns an empty mask" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (int_bound 4095))
    (fun addrs ->
      let m = make_mapping () in
      Mapping.remap_tint m (Tint.make "t") (Bitmask.singleton 0);
      List.for_all
        (fun addr ->
          let mask, _ = Mapping.mask_of m addr in
          not (Bitmask.is_empty mask))
        addrs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tlb_agrees_with_page_table; prop_mask_of_never_empty ]

let suites =
  [
    ( "vm.tint",
      [
        Alcotest.test_case "equality" `Quick test_tint_equality;
        Alcotest.test_case "table default full" `Quick test_tint_table_default_full;
        Alcotest.test_case "table set/lookup" `Quick test_tint_table_set_lookup;
        Alcotest.test_case "table rejects bad masks" `Quick test_tint_table_rejects_bad_masks;
      ] );
    ( "vm.page_table",
      [
        Alcotest.test_case "addressing" `Quick test_page_table_addressing;
        Alcotest.test_case "tints" `Quick test_page_table_tints;
        Alcotest.test_case "region" `Quick test_page_table_region;
        Alcotest.test_case "default reset" `Quick test_page_table_default_reset;
      ] );
    ( "vm.tlb",
      [
        Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
        Alcotest.test_case "capacity eviction" `Quick test_tlb_capacity_eviction;
        Alcotest.test_case "staleness until flush" `Quick test_tlb_staleness;
        Alcotest.test_case "full flush" `Quick test_tlb_full_flush;
        Alcotest.test_case "flush mid-trace" `Quick test_tlb_flush_mid_trace;
      ] );
    ( "vm.frame_map",
      [
        Alcotest.test_case "identity default" `Quick test_frame_map_identity_default;
        Alcotest.test_case "translate" `Quick test_frame_map_translate;
        Alcotest.test_case "collision" `Quick test_frame_map_collision;
        Alcotest.test_case "copy accounting" `Quick test_frame_map_copy_accounting;
        Alcotest.test_case "bad page size" `Quick test_frame_map_bad_page_size;
      ] );
    ( "vm.mapping",
      [
        Alcotest.test_case "mask resolution" `Quick test_mapping_mask_resolution;
        Alcotest.test_case "remap is instant" `Quick test_mapping_remap_is_instant;
        Alcotest.test_case "fig3 tints vs direct" `Quick test_fig3_tints_vs_direct;
        Alcotest.test_case "retint vs remap cost" `Quick test_retint_vs_remap_cost;
      ] );
    ("vm.properties", qcheck_cases);
  ]
