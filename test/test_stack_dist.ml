(* Tests for the single-pass stack-distance engine, the closed-form sweep
   evaluators built on it, and the MRC-driven column allocator.

   The load-bearing property throughout: every number the engine reports for
   associativity [a] is byte-identical to what an [a]-way non-classifying
   LRU Sassoc (or the full machine, for the sweep evaluators) computes by
   replaying the same trace — except the three-C breakdown and
   [fills_per_way], which are not derivable from stack distances and are
   reported as zero. *)

module Access = Memtrace.Access
module Sassoc = Cache.Sassoc
module Stack_dist = Cache.Stack_dist
module Pipeline = Colcache.Pipeline
module Sweep = Colcache.Sweep

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Deterministic address/kind stream (LCG), so failures replay. *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

(* --- engine vs. Sassoc, field by field --- *)

let replay_both ~sets ~ways ~max_ways ~accesses ~addr_space seed =
  let engine = Stack_dist.create ~line_size:16 ~sets ~max_ways () in
  let cache =
    Sassoc.create
      (Sassoc.config ~line_size:16 ~size_bytes:(16 * sets * ways) ~ways ())
  in
  let rand = lcg seed in
  for _ = 1 to accesses do
    let addr = rand addr_space in
    let kind = if rand 4 = 0 then Access.Write else Access.Read in
    Stack_dist.access engine ~kind addr;
    ignore (Sassoc.access cache ~kind addr)
  done;
  (engine, Sassoc.stats cache)

let check_against_sassoc ~ways engine (exact : Cache.Stats.t) =
  let s = Stack_dist.stats engine ~ways in
  check_int "accesses" exact.Cache.Stats.accesses s.Cache.Stats.accesses;
  check_int "hits" exact.Cache.Stats.hits s.Cache.Stats.hits;
  check_int "misses" exact.Cache.Stats.misses s.Cache.Stats.misses;
  check_int "evictions" exact.Cache.Stats.evictions s.Cache.Stats.evictions;
  check_int "writebacks" exact.Cache.Stats.writebacks s.Cache.Stats.writebacks

let test_associativity_one () =
  (* Direct-mapped: depth 0 is the only hit depth; victim choice is forced,
     so even the weakest configuration must agree exactly. *)
  let engine, exact =
    replay_both ~sets:8 ~ways:1 ~max_ways:1 ~accesses:600 ~addr_space:1024 11
  in
  check_against_sassoc ~ways:1 engine exact

let test_single_set () =
  (* One set: the engine is a single recency stack; check every tracked
     associativity against its own Sassoc replay. *)
  for ways = 1 to 4 do
    let engine, exact =
      replay_both ~sets:1 ~ways ~max_ways:4 ~accesses:500 ~addr_space:256 23
    in
    check_against_sassoc ~ways engine exact
  done

let test_cold_misses_only () =
  (* Distinct lines, never re-touched: every access has infinite stack
     distance — a miss at every associativity, all in the cold bucket. *)
  let engine = Stack_dist.create ~line_size:16 ~sets:4 ~max_ways:4 () in
  for i = 0 to 15 do
    Stack_dist.access engine ~kind:Access.Read (i * 16)
  done;
  check_int "accesses" 16 (Stack_dist.accesses engine);
  check_int "cold" 16 (Stack_dist.cold_misses engine);
  check_int "overflows" 0 (Stack_dist.overflows engine);
  Array.iter (fun d -> check_int "histogram empty" 0 d)
    (Stack_dist.histogram engine);
  for ways = 1 to 4 do
    check_int "all miss" 16 (Stack_dist.misses engine ~ways)
  done

let test_repeated_line () =
  (* One line touched n times: one cold miss, n-1 depth-0 hits at every
     associativity; a write makes the final eviction a writeback only once
     capacity forces it out (it never does here). *)
  let engine = Stack_dist.create ~line_size:16 ~sets:4 ~max_ways:4 () in
  for _ = 1 to 10 do
    Stack_dist.access engine ~kind:Access.Write 32
  done;
  check_int "accesses" 10 (Stack_dist.accesses engine);
  check_int "cold" 1 (Stack_dist.cold_misses engine);
  check_int "depth 0" 9 (Stack_dist.histogram engine).(0);
  for ways = 1 to 4 do
    check_int "one miss" 1 (Stack_dist.misses engine ~ways);
    check_int "rest hit" 9 (Stack_dist.hits engine ~ways);
    check_int "no writeback" 0 (Stack_dist.writebacks engine ~ways)
  done

let test_overflow_bucket () =
  (* max_ways = 2 with a 3-line working set in one set: the re-access to the
     first line has depth 2 >= max_ways, so it lands in the overflow bucket
     and misses at both tracked associativities. *)
  let engine = Stack_dist.create ~line_size:16 ~sets:1 ~max_ways:2 () in
  List.iter
    (fun a -> Stack_dist.access engine ~kind:Access.Read a)
    [ 0; 16; 32; 0 ];
  check_int "overflows" 1 (Stack_dist.overflows engine);
  check_int "cold" 3 (Stack_dist.cold_misses engine);
  check_int "misses at 2 ways" 4 (Stack_dist.misses engine ~ways:2)

let test_miss_curve_shape () =
  let engine, _ =
    replay_both ~sets:4 ~ways:4 ~max_ways:4 ~accesses:800 ~addr_space:2048 37
  in
  let curve = Stack_dist.miss_curve engine in
  check_int "curve length" 5 (Array.length curve);
  check_int "curve.(0) = accesses" (Stack_dist.accesses engine) curve.(0);
  for a = 1 to 4 do
    check_int "curve matches misses" (Stack_dist.misses engine ~ways:a)
      curve.(a);
    check_bool "nonincreasing (LRU inclusion)" true (curve.(a) <= curve.(a - 1))
  done

let hot_walk_pipeline =
  lazy
    (Pipeline.make ~init:Workloads.Kernels.init
       ~cache:(Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       (Workloads.Kernels.hot_walk ~hot_elems:192 ~passes:20))

let test_per_tag_totals () =
  (* The per-tag engines split the global traffic: tagged accesses reach
     exactly their own engine, untagged ones only the global engine. *)
  let t = Lazy.force hot_walk_pipeline in
  let packed = Pipeline.packed_trace_of t ~proc:"hot_walk" in
  let global, per_tag =
    Stack_dist.per_tag_of_packed ~line_size:16 ~sets:32 ~max_ways:4 packed
  in
  check_int "global sees everything" (Memtrace.Packed.length packed)
    (Stack_dist.accesses global);
  let tagged = ref 0 in
  Memtrace.Trace.iter
    (fun a -> if a.Access.var <> None then incr tagged)
    (Pipeline.trace_of t ~proc:"hot_walk");
  check_int "per-tag accesses sum to tagged count" !tagged
    (Array.fold_left
       (fun acc (_, e) -> acc + Stack_dist.accesses e)
       0 per_tag);
  Array.iter
    (fun (name, e) ->
      check_bool (name ^ " engine nonempty") true
        (Stack_dist.accesses e > 0))
    per_tag

(* --- closed-form sweep evaluators vs. the machine --- *)

let mpeg_pipeline =
  lazy
    (Pipeline.make ~init:Workloads.Mpeg.init
       ~cache:(Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       Workloads.Mpeg.program)

let check_run_stats name (exact : Machine.Run_stats.t)
    (sweep : Machine.Run_stats.t) =
  (* Everything except fills_per_way (way choice is history-dependent, not
     derivable from stack distances; no consumer reads it on sweep paths). *)
  check_int (name ^ " instructions") exact.instructions sweep.instructions;
  check_int (name ^ " cycles") exact.cycles sweep.cycles;
  check_int (name ^ " memory_accesses") exact.memory_accesses
    sweep.memory_accesses;
  check_int (name ^ " scratchpad_accesses") exact.scratchpad_accesses
    sweep.scratchpad_accesses;
  check_int (name ^ " tlb_hits") exact.tlb_hits sweep.tlb_hits;
  check_int (name ^ " tlb_misses") exact.tlb_misses sweep.tlb_misses;
  check_int (name ^ " l2_hits") exact.l2_hits sweep.l2_hits;
  check_int (name ^ " l2_misses") exact.l2_misses sweep.l2_misses;
  check_int (name ^ " prefetches") exact.prefetches sweep.prefetches;
  let e = exact.cache and s = sweep.cache in
  check_int (name ^ " cache accesses") e.Cache.Stats.accesses
    s.Cache.Stats.accesses;
  check_int (name ^ " cache hits") e.Cache.Stats.hits s.Cache.Stats.hits;
  check_int (name ^ " cache misses") e.Cache.Stats.misses s.Cache.Stats.misses;
  check_int (name ^ " cache evictions") e.Cache.Stats.evictions
    s.Cache.Stats.evictions;
  check_int (name ^ " cache writebacks") e.Cache.Stats.writebacks
    s.Cache.Stats.writebacks

let test_sweep_standard_exact () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let packed = Pipeline.packed_trace_of t ~proc in
      let sweep =
        match
          Sweep.standard ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries [ packed ]
        with
        | Some s -> s
        | None -> Alcotest.fail (proc ^ ": standard sweep infeasible")
      in
      let exact =
        Machine.System.run_packed (Pipeline.fresh_system t) packed
      in
      check_run_stats proc exact sweep)
    Workloads.Mpeg.routines

(* The copy-in set the pipeline would compute for the procedure (variables
   both read and written — see Pipeline.copy_in_vars). *)
let copy_in_of t ~proc =
  let reads = Hashtbl.create 16 and writes = Hashtbl.create 16 in
  Memtrace.Trace.iter
    (fun a ->
      match a.Access.var with
      | None -> ()
      | Some v -> (
          match a.Access.kind with
          | Access.Read | Access.Ifetch -> Hashtbl.replace reads v ()
          | Access.Write -> Hashtbl.replace writes v ()))
    (Pipeline.trace_of t ~proc);
  Hashtbl.fold
    (fun v () acc -> if Hashtbl.mem writes v then v :: acc else acc)
    reads []

let test_sweep_partitioned_exact () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let copy_in = copy_in_of t ~proc in
      let packed = Pipeline.packed_trace_of t ~proc in
      for scratchpad_columns = 0 to 2 do
        let part =
          Pipeline.partition t ~proc ~scratchpad_columns
            ~meth:Pipeline.Profile_based
        in
        let exact =
          let system = Pipeline.fresh_system t in
          Layout.Partition.apply ~copy_in part system;
          Machine.System.run_packed system packed
        in
        match
          Sweep.partitioned ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries ~part ~copy_in [ packed ]
        with
        | Some sweep ->
            check_run_stats
              (Printf.sprintf "%s/scratch=%d" proc scratchpad_columns)
              exact sweep
        | None ->
            (* Placements this decomposition cannot price (e.g. uncached
               regions sharing a page with cached data) fall back to the
               machine in the pipeline; nothing to compare. *)
            ()
      done)
    Workloads.Mpeg.routines

let test_sweep_rejects_non_lru () =
  let t = Lazy.force mpeg_pipeline in
  let packed = Pipeline.packed_trace_of t ~proc:"plus" in
  let fifo = { t.Pipeline.cache with Sassoc.policy = Cache.Policy.Fifo } in
  check_bool "FIFO not closed-form" true
    (Sweep.standard ~cache:fifo ~timing:Machine.Timing.default
       ~page_size:t.Pipeline.page_size ~tlb_entries:t.Pipeline.tlb_entries
       [ packed ]
    = None)

(* --- MRC-driven allocation --- *)

let test_mrc_alloc_greedy () =
  let curves =
    [ ("a", [| 100; 50; 10; 5; 5 |]); ("b", [| 80; 40; 35; 30; 30 |]) ]
  in
  let alloc = Layout.Mrc_alloc.allocate ~columns:4 curves in
  Alcotest.(check (list (pair string int)))
    "greedy marginal gains" [ ("a", 3); ("b", 1) ] alloc;
  check_int "predicted" (5 + 40) (Layout.Mrc_alloc.predicted_misses curves alloc);
  let masks = Layout.Mrc_alloc.to_masks alloc in
  Alcotest.(check (list int)) "a's columns" [ 0; 1; 2 ]
    (Cache.Bitmask.to_list (List.assoc "a" masks));
  Alcotest.(check (list int)) "b's columns" [ 3 ]
    (Cache.Bitmask.to_list (List.assoc "b" masks))

let test_mrc_alloc_plateau () =
  (* All-zero marginals must not strand columns while a curve still has
     points (miss curves need not be convex). *)
  let curves = [ ("a", [| 10; 10; 10 |]); ("b", [| 10; 10 |]) ] in
  let alloc = Layout.Mrc_alloc.allocate ~columns:4 curves in
  Alcotest.(check (list (pair string int)))
    "plateau growth" [ ("a", 2); ("b", 1) ] alloc

let test_mrc_alloc_invalid () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "no curves" true
    (raises (fun () -> Layout.Mrc_alloc.allocate ~columns:4 []));
  check_bool "more names than columns" true
    (raises (fun () ->
         Layout.Mrc_alloc.allocate ~columns:1
           [ ("a", [| 1; 0 |]); ("b", [| 1; 0 |]) ]));
  check_bool "curve without points" true
    (raises (fun () -> Layout.Mrc_alloc.allocate ~columns:2 [ ("a", [| 3 |]) ]))

let test_mrc_layout_prediction_exact () =
  (* The figure's headline claim: the curves predict the allocated layout's
     machine-measured miss count exactly. *)
  let r = Colcache.Experiments.Mrc_layout.run () in
  check_int "curves predict the machine" r.measured_misses r.predicted_misses;
  check_int "curves predict the equal split too" r.naive_measured_misses
    r.naive_predicted_misses;
  check_int "allocation spends every column" 4
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.allocation);
  check_bool "MRC allocation beats the curve-blind split" true
    (r.measured_misses < r.naive_measured_misses)

let suites =
  [
    ( "cache.stack_dist",
      [
        Alcotest.test_case "associativity one" `Quick test_associativity_one;
        Alcotest.test_case "single set" `Quick test_single_set;
        Alcotest.test_case "cold misses only" `Quick test_cold_misses_only;
        Alcotest.test_case "repeated line" `Quick test_repeated_line;
        Alcotest.test_case "overflow bucket" `Quick test_overflow_bucket;
        Alcotest.test_case "miss curve shape" `Quick test_miss_curve_shape;
        Alcotest.test_case "per-tag totals" `Quick test_per_tag_totals;
      ] );
    ( "core.sweep",
      [
        Alcotest.test_case "standard = machine replay" `Quick
          test_sweep_standard_exact;
        Alcotest.test_case "partitioned = machine replay" `Quick
          test_sweep_partitioned_exact;
        Alcotest.test_case "non-LRU rejected" `Quick test_sweep_rejects_non_lru;
      ] );
    ( "layout.mrc_alloc",
      [
        Alcotest.test_case "greedy allocation" `Quick test_mrc_alloc_greedy;
        Alcotest.test_case "plateau" `Quick test_mrc_alloc_plateau;
        Alcotest.test_case "invalid arguments" `Quick test_mrc_alloc_invalid;
        Alcotest.test_case "prediction is exact" `Quick
          test_mrc_layout_prediction_exact;
      ] );
  ]
