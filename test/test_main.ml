(* Entry point: every library contributes its suites. *)
let () =
  Alcotest.run "colcache"
    (Test_memtrace.suites @ Test_cache.suites @ Test_vm.suites
   @ Test_machine.suites @ Test_profile.suites @ Test_ir.suites
   @ Test_coloring.suites @ Test_workloads.suites @ Test_sched.suites
   @ Test_layout.suites @ Test_dynamic.suites @ Test_optimize.suites @ Test_parse.suites @ Test_pipeline.suites
   @ Test_differential.suites @ Test_policy_ref.suites @ Test_stack_dist.suites
   @ Test_addr_decomp.suites @ Test_csv_export.suites @ Test_bench_json.suites
   @ Test_workload_gen.suites @ Test_packed_file.suites @ Test_sampled.suites
   @ Test_wcet.suites @ Test_event.suites @ Test_shard.suites)
