(* Tests for the memtrace library: access records, trace containers and the
   synthetic generators. *)

module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Synthetic = Memtrace.Synthetic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Access --- *)

let test_access_make () =
  let a = Access.make ~kind:Access.Write ~var:"x" ~gap:3 0x100 in
  check_int "addr" 0x100 a.Access.addr;
  check_int "instructions" 4 (Access.instructions a);
  check_bool "kind" true (a.Access.kind = Access.Write)

let test_access_defaults () =
  let a = Access.make 42 in
  check_bool "read by default" true (a.Access.kind = Access.Read);
  check_int "gap" 0 a.Access.gap;
  check_bool "no var" true (a.Access.var = None)

let test_access_invalid () =
  Alcotest.check_raises "negative addr" (Invalid_argument "Access.make: negative address")
    (fun () -> ignore (Access.make (-1)));
  Alcotest.check_raises "negative gap" (Invalid_argument "Access.make: negative gap")
    (fun () -> ignore (Access.make ~gap:(-2) 0))

let test_access_line () =
  let a = Access.make 0x47 in
  check_int "line 16B" 4 (Access.line ~line_size:16 a);
  check_int "line 32B" 2 (Access.line ~line_size:32 a)

let test_access_string_roundtrip () =
  let samples =
    [
      Access.make ~kind:Access.Write ~var:"buf" ~gap:7 0xdead0;
      Access.make ~kind:Access.Ifetch 0;
      Access.make ~var:"a_b.c" 12345;
    ]
  in
  List.iter
    (fun a ->
      let b = Access.of_string (Access.to_string a) in
      check_bool "roundtrip" true (Access.equal a b))
    samples

let test_access_of_string_errors () =
  check_bool "garbage raises" true
    (try
       ignore (Access.of_string "nonsense");
       false
     with Invalid_argument _ -> true);
  check_bool "bad addr raises" true
    (try
       ignore (Access.of_string "R xyz - 0");
       false
     with Invalid_argument _ -> true)

(* --- Trace --- *)

let mk addrs = Trace.of_list (List.map Access.make addrs)

let test_trace_basic () =
  let t = mk [ 1; 2; 3 ] in
  check_int "length" 3 (Trace.length t);
  check_int "get" 2 (Trace.get t 1).Access.addr;
  check_bool "empty" true (Trace.is_empty Trace.empty)

let test_trace_get_out_of_bounds () =
  let t = mk [ 1 ] in
  check_bool "raises" true
    (try
       ignore (Trace.get t 5);
       false
     with Invalid_argument _ -> true)

let test_trace_append_concat () =
  let a = mk [ 1; 2 ] and b = mk [ 3 ] in
  check_bool "append" true (Trace.equal (Trace.append a b) (mk [ 1; 2; 3 ]));
  check_bool "concat" true
    (Trace.equal (Trace.concat [ a; Trace.empty; b ]) (mk [ 1; 2; 3 ]))

let test_trace_instructions () =
  let t =
    Trace.of_list [ Access.make ~gap:2 0; Access.make 4; Access.make ~gap:5 8 ]
  in
  check_int "instructions" 10 (Trace.instructions t)

let test_trace_shift () =
  let t = mk [ 0; 16 ] in
  let s = Trace.shift t ~offset:32 in
  check_int "shifted first" 32 (Trace.get s 0).Access.addr;
  check_int "shifted second" 48 (Trace.get s 1).Access.addr;
  (* shifting down is fine as long as no address goes negative... *)
  let back = Trace.shift s ~offset:(-32) in
  check_bool "round-trip shift" true (Trace.equal back t);
  (* ...and rejected the moment one would *)
  Alcotest.check_raises "negative result rejected"
    (Invalid_argument "Access.with_addr: negative address") (fun () ->
      ignore (Trace.shift t ~offset:(-1)));
  check_bool "empty trace shifts to empty" true
    (Trace.is_empty (Trace.shift Trace.empty ~offset:(-4096)))

let test_trace_filter () =
  let t = mk [ 0; 16; 32; 48 ] in
  let even a = a.Access.addr mod 32 = 0 in
  check_bool "partial filter" true
    (Trace.equal (Trace.filter even t) (mk [ 0; 32 ]));
  check_bool "full filter keeps everything" true
    (Trace.equal (Trace.filter (fun _ -> true) t) t);
  check_bool "empty result" true
    (Trace.is_empty (Trace.filter (fun _ -> false) t));
  check_bool "empty input" true
    (Trace.is_empty (Trace.filter (fun _ -> true) Trace.empty));
  (* order of survivors is preserved *)
  let odd a = a.Access.addr mod 32 <> 0 in
  Alcotest.(check (list int))
    "order preserved" [ 16; 48 ]
    (List.map (fun a -> a.Access.addr) (Trace.to_list (Trace.filter odd t)))

let test_trace_sub () =
  let t = mk [ 1; 2; 3; 4 ] in
  check_bool "middle slice" true
    (Trace.equal (Trace.sub t ~pos:1 ~len:2) (mk [ 2; 3 ]));
  check_bool "empty slice" true (Trace.is_empty (Trace.sub t ~pos:2 ~len:0));
  check_bool "whole trace" true (Trace.equal (Trace.sub t ~pos:0 ~len:4) t);
  check_bool "out-of-bounds raises" true
    (try
       ignore (Trace.sub t ~pos:3 ~len:2);
       false
     with Invalid_argument _ -> true);
  check_bool "negative pos raises" true
    (try
       ignore (Trace.sub t ~pos:(-1) ~len:1);
       false
     with Invalid_argument _ -> true)

let test_trace_vars () =
  let t =
    Trace.of_list
      [
        Access.make ~var:"a" 0;
        Access.make 4;
        Access.make ~var:"b" 8;
        Access.make ~var:"a" 12;
      ]
  in
  Alcotest.(check (list string)) "vars in order" [ "a"; "b" ] (Trace.vars t);
  check_int "filter_var a" 2 (Trace.length (Trace.filter_var t "a"))

let test_trace_addr_range () =
  check_bool "empty none" true (Trace.addr_range Trace.empty = None);
  check_bool "range" true (Trace.addr_range (mk [ 5; 1; 9 ]) = Some (1, 9))

let test_trace_footprint () =
  let t = mk [ 0; 4; 8; 16; 31; 32 ] in
  check_int "lines" 3 (Trace.footprint ~line_size:16 t)

let test_trace_string_roundtrip () =
  let t =
    Trace.of_list
      [ Access.make ~var:"x" ~gap:1 0x10; Access.write ~gap:2 0x20 ]
  in
  check_bool "roundtrip" true (Trace.equal t (Trace.of_string (Trace.to_string t)))

let test_builder () =
  let b = Trace.Builder.create ~initial_capacity:1 () in
  for i = 0 to 99 do
    Trace.Builder.emit b (i * 4)
  done;
  check_int "builder length" 100 (Trace.Builder.length b);
  let t = Trace.Builder.build b in
  check_int "built length" 100 (Trace.length t);
  check_int "last addr" 396 (Trace.get t 99).Access.addr

(* --- Synthetic --- *)

let test_sequential () =
  let t = Synthetic.sequential ~base:100 ~count:5 ~stride:8 () in
  Alcotest.(check (list int))
    "addresses"
    [ 100; 108; 116; 124; 132 ]
    (List.map (fun a -> a.Access.addr) (Trace.to_list t))

let test_repeat_walk () =
  let t = Synthetic.repeat_walk ~base:0 ~len:3 ~stride:4 ~passes:2 () in
  Alcotest.(check (list int))
    "two passes"
    [ 0; 4; 8; 0; 4; 8 ]
    (List.map (fun a -> a.Access.addr) (Trace.to_list t))

let test_uniform_random_deterministic () =
  let t1 = Synthetic.uniform_random ~seed:7 ~base:0 ~span:1024 ~count:50 () in
  let t2 = Synthetic.uniform_random ~seed:7 ~base:0 ~span:1024 ~count:50 () in
  check_bool "same seed same trace" true (Trace.equal t1 t2);
  let t3 = Synthetic.uniform_random ~seed:8 ~base:0 ~span:1024 ~count:50 () in
  check_bool "different seed differs" false (Trace.equal t1 t3)

let test_uniform_random_in_span () =
  let t = Synthetic.uniform_random ~seed:3 ~base:4096 ~span:256 ~count:200 () in
  Trace.iter
    (fun a ->
      check_bool "in span" true (a.Access.addr >= 4096 && a.Access.addr < 4096 + 256);
      check_int "aligned" 0 (a.Access.addr mod 4))
    t

let test_interleave () =
  let a = mk [ 1; 2; 3; 4 ] and b = mk [ 10; 20 ] in
  let t = Synthetic.interleave [ a; b ] ~quantum:2 in
  Alcotest.(check (list int))
    "round robin"
    [ 1; 2; 10; 20; 3; 4 ]
    (List.map (fun x -> x.Access.addr) (Trace.to_list t))

(* --- Trace_file --- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_trace_file_roundtrip () =
  let t =
    Trace.of_list
      [
        Access.make ~var:"x" ~gap:3 0x100;
        Access.write ~gap:1 0x200;
        Access.make ~kind:Access.Ifetch 0x300;
      ]
  in
  let path = tmp_path "colcache_test_roundtrip.trace" in
  Memtrace.Trace_file.save ~path t;
  let t' = Memtrace.Trace_file.load ~path in
  Sys.remove path;
  check_bool "roundtrip" true (Trace.equal t t')

let test_trace_file_empty () =
  let path = tmp_path "colcache_test_empty.trace" in
  Memtrace.Trace_file.save ~path Trace.empty;
  let t = Memtrace.Trace_file.load ~path in
  Sys.remove path;
  check_bool "empty roundtrip" true (Trace.is_empty t)

let test_trace_file_random_roundtrip () =
  (* Property-style round-trip over the conformance harness's generator:
     write → read → structural equality, across random kinds, vars, gaps and
     lengths — including length 0 (Check.Gen.trace may produce it, and the
     last iteration forces it). *)
  let rng = Check.Prng.create ~seed:271828 in
  let path = tmp_path "colcache_test_gen_roundtrip.trace" in
  let one trace =
    Memtrace.Trace_file.save ~path trace;
    let back = Memtrace.Trace_file.load ~path in
    check_bool "header count" true
      (Memtrace.Trace_file.header_of trace
       = Printf.sprintf "colcache-trace v1 %d" (Trace.length trace));
    check_bool "roundtrip" true (Trace.equal trace back)
  in
  let saw_empty = ref false in
  for _ = 1 to 40 do
    let trace = Check.Gen.trace rng in
    if Trace.is_empty trace then saw_empty := true;
    one trace
  done;
  one Trace.empty;
  (* the explicit empty case always runs even if the generator produced none *)
  check_bool "empty case covered" true (!saw_empty || Trace.is_empty Trace.empty);
  Sys.remove path

let test_trace_file_bad_header () =
  let path = tmp_path "colcache_test_bad.trace" in
  let oc = open_out path in
  output_string oc "not a trace
";
  close_out oc;
  let raised =
    try ignore (Memtrace.Trace_file.load ~path); false
    with Invalid_argument _ -> true
  in
  Sys.remove path;
  check_bool "bad header rejected" true raised

let test_trace_file_count_mismatch () =
  let path = tmp_path "colcache_test_mismatch.trace" in
  let oc = open_out path in
  output_string oc "colcache-trace v1 5
R 0x0 - 0
";
  close_out oc;
  let raised =
    try ignore (Memtrace.Trace_file.load ~path); false
    with Invalid_argument _ -> true
  in
  Sys.remove path;
  check_bool "count mismatch rejected" true raised

(* --- properties --- *)

let gen_access =
  QCheck.Gen.(
    let* addr = int_bound 0xFFFFF in
    let* gap = int_bound 20 in
    let* kind = oneofl [ Access.Read; Access.Write; Access.Ifetch ] in
    let* var = opt (oneofl [ "a"; "b"; "stream"; "tbl" ]) in
    return (Access.make ~kind ?var ~gap addr))

let arb_trace =
  QCheck.make
    ~print:(fun t -> Trace.to_string t)
    QCheck.Gen.(map Trace.of_list (list_size (int_bound 60) gen_access))

let prop_trace_string_roundtrip =
  QCheck.Test.make ~name:"trace to_string/of_string roundtrip" ~count:200
    arb_trace (fun t -> Trace.equal t (Trace.of_string (Trace.to_string t)))

let prop_shift_preserves_structure =
  QCheck.Test.make ~name:"shift preserves length and instruction count" ~count:200
    arb_trace (fun t ->
      let s = Trace.shift t ~offset:4096 in
      Trace.length s = Trace.length t
      && Trace.instructions s = Trace.instructions t)

let prop_concat_length =
  QCheck.Test.make ~name:"concat sums lengths" ~count:100
    (QCheck.pair arb_trace arb_trace) (fun (a, b) ->
      Trace.length (Trace.concat [ a; b ]) = Trace.length a + Trace.length b)

let prop_footprint_bounded =
  QCheck.Test.make ~name:"footprint <= length and >= 1 when non-empty" ~count:200
    arb_trace (fun t ->
      let f = Trace.footprint ~line_size:16 t in
      if Trace.is_empty t then f = 0 else f >= 1 && f <= Trace.length t)

(* --- packed (columnar) storage --- *)

module Packed = Memtrace.Packed

let prop_packed_trace_roundtrip =
  QCheck.Test.make ~name:"packed of_trace/to_trace identity" ~count:200
    arb_trace (fun t ->
      Trace.equal t (Packed.to_trace (Packed.of_trace t)))

let prop_packed_builder_agrees =
  QCheck.Test.make ~name:"packed Builder agrees with of_list" ~count:200
    arb_trace (fun t ->
      let accesses = Trace.to_list t in
      let b = Packed.Builder.create () in
      List.iter (Packed.Builder.add b) accesses;
      Packed.equal (Packed.Builder.build b) (Packed.of_list accesses))

let prop_packed_preserves_columns =
  QCheck.Test.make ~name:"packed columns match per-access fields" ~count:200
    arb_trace (fun t ->
      let p = Packed.of_trace t in
      Packed.length p = Trace.length t
      && Packed.instructions p = Trace.instructions t
      && List.for_all2
           (fun (a : Access.t) i ->
             Packed.addr p i = a.Access.addr
             && Packed.gap p i = a.Access.gap
             && Packed.kind p i = a.Access.kind
             && Packed.var p i = a.Access.var
             && Access.equal (Packed.get p i) a)
           (Trace.to_list t)
           (List.init (Trace.length t) Fun.id))

let test_packed_rejects_negative () =
  let b = Packed.Builder.create () in
  Alcotest.check_raises "negative address"
    (Invalid_argument "Packed.Builder.emit: negative address") (fun () ->
      Packed.Builder.emit b (-1));
  Alcotest.check_raises "negative gap"
    (Invalid_argument "Packed.Builder.emit: negative gap") (fun () ->
      Packed.Builder.emit b ~gap:(-3) 0x40);
  check_int "rejected accesses are not recorded" 0 (Packed.Builder.length b)

let test_packed_max_address () =
  let b = Packed.Builder.create ~initial_capacity:1 () in
  Packed.Builder.emit b ~kind:Access.Write ~var:"edge" ~gap:0 max_int;
  Packed.Builder.emit b max_int;
  let p = Packed.Builder.build b in
  check_int "max address survives" max_int (Packed.addr p 0);
  check_int "and again past a growth" max_int (Packed.addr p 1);
  let t = Packed.to_trace p in
  check_bool "round-trips through the boxed form" true
    (Packed.equal p (Packed.of_trace t))

let test_packed_var_interning () =
  let b = Packed.Builder.create () in
  for i = 0 to 99 do
    Packed.Builder.emit b ~var:(if i mod 2 = 0 then "even" else "odd") i
  done;
  Packed.Builder.emit b 100;
  let p = Packed.Builder.build b in
  check_int "two interned names" 2 (Array.length (Packed.var_table p));
  check_bool "tags index the table" true
    (Packed.var p 0 = Some "even"
    && Packed.var p 1 = Some "odd"
    && Packed.var p 100 = None)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_trace_string_roundtrip;
      prop_shift_preserves_structure;
      prop_concat_length;
      prop_footprint_bounded;
      prop_packed_trace_roundtrip;
      prop_packed_builder_agrees;
      prop_packed_preserves_columns;
    ]

let suites =
  [
    ( "memtrace.access",
      [
        Alcotest.test_case "make" `Quick test_access_make;
        Alcotest.test_case "defaults" `Quick test_access_defaults;
        Alcotest.test_case "invalid args" `Quick test_access_invalid;
        Alcotest.test_case "line address" `Quick test_access_line;
        Alcotest.test_case "string roundtrip" `Quick test_access_string_roundtrip;
        Alcotest.test_case "of_string errors" `Quick test_access_of_string_errors;
      ] );
    ( "memtrace.trace",
      [
        Alcotest.test_case "basic" `Quick test_trace_basic;
        Alcotest.test_case "out of bounds" `Quick test_trace_get_out_of_bounds;
        Alcotest.test_case "append/concat" `Quick test_trace_append_concat;
        Alcotest.test_case "instructions" `Quick test_trace_instructions;
        Alcotest.test_case "shift" `Quick test_trace_shift;
        Alcotest.test_case "filter" `Quick test_trace_filter;
        Alcotest.test_case "sub" `Quick test_trace_sub;
        Alcotest.test_case "vars" `Quick test_trace_vars;
        Alcotest.test_case "addr_range" `Quick test_trace_addr_range;
        Alcotest.test_case "footprint" `Quick test_trace_footprint;
        Alcotest.test_case "string roundtrip" `Quick test_trace_string_roundtrip;
        Alcotest.test_case "builder" `Quick test_builder;
      ] );
    ( "memtrace.synthetic",
      [
        Alcotest.test_case "sequential" `Quick test_sequential;
        Alcotest.test_case "repeat walk" `Quick test_repeat_walk;
        Alcotest.test_case "random determinism" `Quick test_uniform_random_deterministic;
        Alcotest.test_case "random span" `Quick test_uniform_random_in_span;
        Alcotest.test_case "interleave" `Quick test_interleave;
      ] );
    ( "memtrace.trace_file",
      [
        Alcotest.test_case "roundtrip" `Quick test_trace_file_roundtrip;
        Alcotest.test_case "empty" `Quick test_trace_file_empty;
        Alcotest.test_case "random roundtrip (Check.Gen)" `Quick
          test_trace_file_random_roundtrip;
        Alcotest.test_case "bad header" `Quick test_trace_file_bad_header;
        Alcotest.test_case "count mismatch" `Quick test_trace_file_count_mismatch;
      ] );
    ( "memtrace.packed",
      [
        Alcotest.test_case "builder rejects negatives" `Quick
          test_packed_rejects_negative;
        Alcotest.test_case "max address round-trip" `Quick
          test_packed_max_address;
        Alcotest.test_case "variable interning" `Quick
          test_packed_var_interning;
      ] );
    ("memtrace.properties", qcheck_cases);
  ]
