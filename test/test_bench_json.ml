(* Tests for Core.Bench_json: the writer/parser pair the benchmark
   regression harness (and the CI smoke step) depends on. *)

module Bj = Colcache.Bench_json

let rows =
  [
    { Bj.name = "colcache/hot_access_trace";
      ns_per_run = 2397684.3;
      accesses_per_sec = 135872786.1;
      sample_error = None };
    { Bj.name = "colcache/fig5_multitask";
      ns_per_run = 74144335.0;
      accesses_per_sec = 0.;
      sample_error = None };
    { Bj.name = "colcache/mrc_sampled_zipf";
      ns_per_run = 120.5;
      accesses_per_sec = 8.3e9;
      sample_error = Some 0.0123 };
    { Bj.name = "odd \"name\",\\with\tescapes";
      ns_per_run = 1.;
      accesses_per_sec = 2.;
      sample_error = None };
  ]

let test_roundtrip () =
  let back = Bj.of_string (Bj.to_string rows) in
  Alcotest.(check bool) "round-trip" true (rows = back);
  Alcotest.(check bool) "empty round-trip" true (Bj.of_string (Bj.to_string []) = [])

let test_file_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "colcache_bench.json"
  in
  Bj.write ~path rows;
  let back = Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> Bj.read ~path) in
  Alcotest.(check bool) "file round-trip" true (rows = back)

let rejects text =
  match Bj.of_string text with
  | _ -> Alcotest.failf "accepted malformed input %S" text
  | exception Invalid_argument _ -> ()

let test_schema_rejections () =
  rejects "";
  rejects "{}";
  rejects "[ { \"name\": \"x\" } ]" (* missing fields *);
  rejects
    "[ { \"name\": \"x\", \"ns_per_run\": 1, \"accesses_per_sec\": 2, \
     \"extra\": 3 } ]" (* unknown field *);
  rejects
    "[ { \"name\": 7, \"ns_per_run\": 1, \"accesses_per_sec\": 2 } ]"
    (* name must be a string *);
  rejects
    "[ { \"name\": \"x\", \"ns_per_run\": \"1\", \"accesses_per_sec\": 2 } ]"
    (* numbers must be numbers *);
  rejects
    "[ { \"name\": \"x\", \"ns_per_run\": 1, \"accesses_per_sec\": 2, \
     \"sample_error\": \"big\" } ]" (* sample_error must be a number *);
  rejects "[] trailing";
  rejects "[ { \"name\": \"x\", \"ns_per_run\": 1, \"accesses_per_sec\": 2 }"

let test_sample_error_optional () =
  (* Rows without the field parse to None and render without it; rows with
     it round-trip the value. Old baselines stay readable. *)
  let old_style = "[ { \"name\": \"x\", \"ns_per_run\": 1, \"accesses_per_sec\": 2 } ]" in
  (match Bj.of_string old_style with
  | [ r ] -> Alcotest.(check bool) "absent field is None" true (r.Bj.sample_error = None)
  | _ -> Alcotest.fail "expected one row");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let text = Bj.to_string rows in
  Alcotest.(check bool) "field rendered when present" true
    (contains text "\"sample_error\": 0.0123");
  Alcotest.(check bool) "field omitted when None" true
    (not (contains (Bj.to_string [ List.hd rows ]) "sample_error"))

let test_non_finite_rejected () =
  Alcotest.(check bool) "NaN has no rendering" true
    (try
       ignore
         (Bj.to_string
            [ { Bj.name = "x"; ns_per_run = Float.nan; accesses_per_sec = 0.;
                sample_error = None } ]);
       false
     with Invalid_argument _ -> true)

let test_regressions () =
  let base n ns =
    { Bj.name = n; ns_per_run = ns; accesses_per_sec = 0.; sample_error = None }
  in
  let baseline = [ base "a" 100.; base "b" 100.; base "gone" 50. ] in
  let current = [ base "a" 140.; base "b" 160.; base "new" 1000. ] in
  let regs = Bj.regressions ~baseline ~current ~max_pct:50. in
  (match regs with
  | [ r ] ->
      Alcotest.(check string) "only b regressed over 50%" "b" r.Bj.bench;
      Alcotest.(check bool) "slowdown is 60%" true
        (abs_float (r.Bj.slowdown_pct -. 60.) < 1e-9)
  | _ -> Alcotest.failf "expected exactly one regression, got %d" (List.length regs));
  Alcotest.(check bool) "tighter threshold catches both" true
    (List.length (Bj.regressions ~baseline ~current ~max_pct:10.) = 2);
  Alcotest.(check bool) "zero-ns baseline rows are skipped" true
    (Bj.regressions ~baseline:[ base "z" 0. ] ~current:[ base "z" 10. ]
       ~max_pct:50.
    = [])

let suites =
  [
    ( "core.bench_json",
      [
        Alcotest.test_case "string round-trip" `Quick test_roundtrip;
        Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        Alcotest.test_case "schema rejections" `Quick test_schema_rejections;
        Alcotest.test_case "sample_error optional" `Quick
          test_sample_error_optional;
        Alcotest.test_case "non-finite rejected" `Quick test_non_finite_rejected;
        Alcotest.test_case "regression compare" `Quick test_regressions;
      ] );
  ]
