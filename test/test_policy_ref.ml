(* Property test pinning the allocation-free Policy.victim bit scans against
   the naive list-based specification Check.Oracle.victim_ref.

   Each case builds TWO policies of the same kind/geometry (Random shares a
   seed), drives both through the same warm-up history of hits and fills so
   their stamps / MRU bits / rng streams are identical, then compares victim
   choices over random (set, allowed-mask, valid-mask) queries. Separate twin
   policies matter because Random's query consumes a draw from the stream. *)

module Policy = Cache.Policy
module Bitmask = Cache.Bitmask

type case = {
  kind : Policy.kind;
  sets : int;
  ways : int;
  history : (bool * int * int) list;  (* (is_hit, set, way) warm-up events *)
  queries : (int * int * int) list;  (* (set, allowed bits, valid bits) *)
}

let pp_case c =
  Format.asprintf "{%s sets=%d ways=%d history=%d queries=[%s]}"
    (Policy.kind_to_string c.kind)
    c.sets c.ways (List.length c.history)
    (String.concat "; "
       (List.map
          (fun (s, a, v) -> Printf.sprintf "set=%d allowed=%#x valid=%#x" s a v)
          c.queries))

let gen_case =
  QCheck.Gen.(
    let* kind =
      oneof
        [
          return Policy.Lru;
          return Policy.Fifo;
          return Policy.Bit_plru;
          map (fun s -> Policy.Random s) (int_range 1 1000);
        ]
    in
    let* sets_log = int_range 0 4 in
    let sets = 1 lsl sets_log in
    (* span 1-way, mid-range, and the max_columns edge *)
    let* ways = oneofl [ 1; 2; 3; 7; 8; 13; 62 ] in
    let* history =
      list_size (int_bound 80)
        (triple bool (int_bound (sets - 1)) (int_bound (ways - 1)))
    in
    let full = (1 lsl ways) - 1 in
    let* queries =
      list_size (int_range 1 8)
        (triple (int_bound (sets - 1))
           (map (fun m -> 1 + (m land (full - 1))) (int_bound full))
           (int_bound full))
    in
    return { kind; sets; ways; history; queries })

let arb_case = QCheck.make ~print:pp_case gen_case

let prop_victim_matches_ref { kind; sets; ways; history; queries } =
  let fast = Policy.create kind ~sets ~ways in
  let naive = Policy.create kind ~sets ~ways in
  List.iter
    (fun (is_hit, set, way) ->
      let f = if is_hit then Policy.on_hit else Policy.on_fill in
      f fast ~set ~way;
      f naive ~set ~way)
    history;
  List.for_all
    (fun (set, allowed_bits, valid_bits) ->
      let allowed = Bitmask.of_bits allowed_bits
      and valid = Bitmask.of_bits valid_bits in
      let got = Policy.victim fast ~set ~allowed ~valid in
      let want = Check.Oracle.victim_ref naive ~set ~allowed ~valid in
      if got <> want then
        QCheck.Test.fail_reportf
          "victim mismatch: %s sets=%d ways=%d set=%d allowed=%#x valid=%#x: \
           fast=%d ref=%d"
          (Policy.kind_to_string kind)
          sets ways set allowed_bits valid_bits got want
      else true)
    queries

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"Policy.victim agrees with Oracle.victim_ref"
        ~count:2000 arb_case prop_victim_matches_ref;
    ]

(* Deterministic spot checks of the pinned tie-breaks, so a regression names
   the exact rule it broke instead of a shrunk counterexample. *)

let full ways = Bitmask.full ~n:ways

let test_tie_breaks () =
  (* LRU, equal stamps (fresh policy): highest allowed way wins. *)
  let p = Policy.create Policy.Lru ~sets:1 ~ways:4 in
  Alcotest.(check int)
    "LRU all-equal stamps -> highest way" 3
    (Policy.victim p ~set:0 ~allowed:(full 4) ~valid:(full 4));
  (* Empty allowed way beats live data, lowest such way first. *)
  let p = Policy.create Policy.Lru ~sets:1 ~ways:4 in
  Alcotest.(check int)
    "empty way -> lowest empty" 1
    (Policy.victim p ~set:0 ~allowed:(full 4)
       ~valid:(Bitmask.of_bits 0b1001));
  (* Bit-PLRU with every candidate marked falls back to the lowest one. *)
  let p = Policy.create Policy.Bit_plru ~sets:1 ~ways:3 in
  Policy.on_fill p ~set:0 ~way:0;
  Policy.on_fill p ~set:0 ~way:1;
  (* ways 0 and 1 marked; restrict the mask to them *)
  Alcotest.(check int)
    "PLRU all-marked candidates -> lowest" 0
    (Policy.victim p ~set:0 ~allowed:(Bitmask.of_bits 0b011)
       ~valid:(full 3))

let suites =
  [
    ( "policy-ref",
      Alcotest.test_case "pinned tie-breaks" `Quick test_tie_breaks
      :: qcheck_tests );
  ]
