(* Regression tests pinning Sassoc's shift/mask address decomposition
   (line_of_addr / set_of_line / tag_of_line, precomputed at create) to the
   arithmetic definition — line = addr / line_size, set = line mod sets,
   tag = line / sets — across the geometries that stress the precomputation:
   a 1-way cache (many sets), a Bitmask.max_columns-way cache (few sets, the
   widest geometry the mask representation admits), and a single-set cache
   (tag_shift = 0, set always 0). *)

module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask

let check_int = Alcotest.(check int)

let geometries =
  [
    (* line_size, size_bytes, ways *)
    ("1-way, 64 sets", 16, 1024, 1);
    ("max-way, 4 sets", 16, 16 * Bitmask.max_columns * 4, Bitmask.max_columns);
    ("1-set, 8 ways", 32, 32 * 8, 8);
    ("1-set, 1 way", 64, 64, 1);
  ]

let test_matches_arithmetic () =
  List.iter
    (fun (label, line_size, size_bytes, ways) ->
      let cfg = Sassoc.config ~line_size ~size_bytes ~ways () in
      let sets = cfg.Sassoc.sets in
      let t = Sassoc.create cfg in
      let addrs =
        [ 0; 1; line_size - 1; line_size; size_bytes - 1; size_bytes;
          7 * size_bytes; 0x100000; 0x123457; max_int / 2 ]
      in
      List.iter
        (fun addr ->
          let line = Sassoc.line_of_addr t addr in
          check_int (label ^ ": line") (addr / line_size) line;
          check_int (label ^ ": set") (line mod sets) (Sassoc.set_of_line t line);
          check_int (label ^ ": tag") (line / sets) (Sassoc.tag_of_line t line))
        addrs)
    geometries

(* Hard literals for one geometry of each class, so a precomputation bug
   that breaks decomposition and recomposition symmetrically still fails. *)
let test_pinned_values () =
  (* 16 B lines, 64 sets, 1 way: line = addr >> 4, set = low 6 line bits. *)
  let t = Sassoc.create (Sassoc.config ~line_size:16 ~size_bytes:1024 ~ways:1 ()) in
  check_int "1-way line" 0x1234 (Sassoc.line_of_addr t 0x12345);
  check_int "1-way set" 0x34 (Sassoc.set_of_line t 0x1234);
  check_int "1-way tag" 0x48 (Sassoc.tag_of_line t 0x1234);
  (* 62 ways, 4 sets: set = low 2 line bits, tag = line >> 2. *)
  let t =
    Sassoc.create
      (Sassoc.config ~line_size:16
         ~size_bytes:(16 * Bitmask.max_columns * 4)
         ~ways:Bitmask.max_columns ())
  in
  check_int "max-way sets" 4 (Sassoc.geometry t).Sassoc.sets;
  check_int "max-way line" 0x7b (Sassoc.line_of_addr t 0x7b9);
  check_int "max-way set" 3 (Sassoc.set_of_line t 0x7b);
  check_int "max-way tag" 0x1e (Sassoc.tag_of_line t 0x7b);
  (* 1 set: every line maps to set 0 and the tag is the line itself. *)
  let t = Sassoc.create (Sassoc.config ~line_size:32 ~size_bytes:256 ~ways:8 ()) in
  check_int "1-set set" 0 (Sassoc.set_of_line t 0xabcdef);
  check_int "1-set tag" 0xabcdef (Sassoc.tag_of_line t 0xabcdef);
  check_int "1-set line" 0x5e6f7 (Sassoc.line_of_addr t 0xbcdee1)

(* Decomposition must survive actual residency: install a line in each
   geometry and find it again via probe (tag/set round-trip through the
   packed tags array). *)
let test_roundtrip_through_cache () =
  List.iter
    (fun (label, line_size, size_bytes, ways) ->
      let t = Sassoc.create (Sassoc.config ~line_size ~size_bytes ~ways ()) in
      let addr = (13 * size_bytes) + (5 * line_size) + (line_size / 2) in
      ignore (Sassoc.access t ~kind:Memtrace.Access.Read addr);
      (match Sassoc.probe t addr with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: just-installed address not found" label);
      (* a different tag mapping to the same set must not alias *)
      let other = addr + size_bytes in
      Alcotest.(check bool)
        (label ^ ": distinct tag does not alias")
        true
        (ways > 1 || Sassoc.probe t other = None))
    geometries

let suites =
  [
    ( "cache.addr_decomp",
      [
        Alcotest.test_case "matches div/mod arithmetic" `Quick
          test_matches_arithmetic;
        Alcotest.test_case "pinned literals" `Quick test_pinned_values;
        Alcotest.test_case "round-trip through residency" `Quick
          test_roundtrip_through_cache;
      ] );
  ]
