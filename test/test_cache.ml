(* Tests for the cache library: bitmasks, the LRU set, replacement policies,
   the column-restricted set-associative cache and its statistics. *)

module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Bitmask = Cache.Bitmask
module Policy = Cache.Policy
module Lru_set = Cache.Lru_set
module Sassoc = Cache.Sassoc
module Stats = Cache.Stats
module Column_cache = Cache.Column_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Bitmask --- *)

let test_bitmask_basic () =
  let m = Bitmask.of_list [ 0; 2; 3 ] in
  check_bool "mem 2" true (Bitmask.mem m 2);
  check_bool "mem 1" false (Bitmask.mem m 1);
  check_int "count" 3 (Bitmask.count m);
  Alcotest.(check (list int)) "to_list" [ 0; 2; 3 ] (Bitmask.to_list m)

let test_bitmask_ops () =
  let a = Bitmask.of_list [ 0; 1 ] and b = Bitmask.of_list [ 1; 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2 ] Bitmask.(to_list (union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] Bitmask.(to_list (inter a b));
  Alcotest.(check (list int)) "diff" [ 0 ] Bitmask.(to_list (diff a b));
  check_bool "subset" true (Bitmask.subset (Bitmask.singleton 1) a);
  check_bool "not subset" false (Bitmask.subset b a)

let test_bitmask_full_complement () =
  let f = Bitmask.full ~n:4 in
  check_int "full count" 4 (Bitmask.count f);
  let c = Bitmask.complement ~n:4 (Bitmask.of_list [ 1; 3 ]) in
  Alcotest.(check (list int)) "complement" [ 0; 2 ] (Bitmask.to_list c)

let test_bitmask_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] Bitmask.(to_list (range ~lo:2 ~hi:4));
  check_bool "empty range" true (Bitmask.is_empty (Bitmask.range ~lo:3 ~hi:2))

let test_bitmask_string () =
  let m = Bitmask.of_list [ 0; 3 ] in
  Alcotest.(check string) "render" "1001" (Bitmask.to_string ~n:4 m);
  check_bool "parse" true (Bitmask.equal m (Bitmask.of_string "1001"))

let test_bitmask_bounds () =
  check_bool "negative col raises" true
    (try ignore (Bitmask.singleton (-1)); false with Invalid_argument _ -> true);
  check_bool "min_elt raises" true
    (try ignore (Bitmask.min_elt Bitmask.empty); false with Not_found -> true);
  check_int "min_elt" 2 (Bitmask.min_elt (Bitmask.of_list [ 5; 2 ]))

let arb_mask =
  QCheck.make
    ~print:(fun m -> Bitmask.to_string ~n:16 m)
    QCheck.Gen.(map (fun l -> Bitmask.of_list l) (list_size (int_bound 8) (int_bound 15)))

let prop_mask_roundtrip =
  QCheck.Test.make ~name:"bitmask of_list/to_list roundtrip" ~count:300 arb_mask
    (fun m -> Bitmask.equal m (Bitmask.of_list (Bitmask.to_list m)))

let prop_mask_demorgan =
  QCheck.Test.make ~name:"bitmask De Morgan" ~count:300 (QCheck.pair arb_mask arb_mask)
    (fun (a, b) ->
      Bitmask.equal
        (Bitmask.complement ~n:16 (Bitmask.union a b))
        (Bitmask.inter (Bitmask.complement ~n:16 a) (Bitmask.complement ~n:16 b)))

let prop_mask_union_count =
  QCheck.Test.make ~name:"count(union) = count a + count b - count(inter)" ~count:300
    (QCheck.pair arb_mask arb_mask) (fun (a, b) ->
      Bitmask.(count (union a b) = count a + count b - count (inter a b)))

(* --- Lru_set --- *)

let test_lru_set_basic () =
  let s = Lru_set.create ~capacity:3 in
  check_bool "miss 1" true (Lru_set.touch s 1 = `Miss None);
  check_bool "miss 2" true (Lru_set.touch s 2 = `Miss None);
  check_bool "hit 1" true (Lru_set.touch s 1 = `Hit);
  check_bool "miss 3" true (Lru_set.touch s 3 = `Miss None);
  (* order now: 3, 1, 2 -> inserting 4 evicts 2 *)
  check_bool "evicts lru" true (Lru_set.touch s 4 = `Miss (Some 2));
  Alcotest.(check (list int)) "mru order" [ 4; 3; 1 ] (Lru_set.to_list s)

let test_lru_set_remove_clear () =
  let s = Lru_set.create ~capacity:2 in
  ignore (Lru_set.touch s 10);
  ignore (Lru_set.touch s 20);
  check_bool "remove present" true (Lru_set.remove s 10);
  check_bool "remove absent" false (Lru_set.remove s 10);
  check_int "length" 1 (Lru_set.length s);
  (* freed slot is reusable *)
  check_bool "reinsert" true (Lru_set.touch s 30 = `Miss None);
  Lru_set.clear s;
  check_int "cleared" 0 (Lru_set.length s);
  check_bool "empty after clear" true (Lru_set.to_list s = [])

let prop_lru_set_capacity =
  QCheck.Test.make ~name:"lru_set never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_bound 80) (int_bound 20)))
    (fun (cap, keys) ->
      let s = Lru_set.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Lru_set.touch s k);
          Lru_set.length s <= cap)
        keys)

let prop_lru_set_model =
  (* Compare against a naive list-based LRU model. *)
  QCheck.Test.make ~name:"lru_set matches reference model" ~count:200
    QCheck.(pair (int_range 1 6) (list_of_size (QCheck.Gen.int_bound 60) (int_bound 12)))
    (fun (cap, keys) ->
      let s = Lru_set.create ~capacity:cap in
      let model = ref [] in
      List.for_all
        (fun k ->
          ignore (Lru_set.touch s k);
          model := k :: List.filter (fun x -> x <> k) !model;
          if List.length !model > cap then
            model := List.filteri (fun i _ -> i < cap) !model;
          Lru_set.to_list s = !model)
        keys)

(* --- geometry helpers --- *)

(* 4 columns x 4 sets x 16B lines = 256B cache; column = 64B. *)
let tiny_config ?(policy = Policy.Lru) ?(classify = false) () =
  Sassoc.config ~line_size:16 ~policy ~classify ~size_bytes:256 ~ways:4 ()

let read_addr c ?mask addr = Sassoc.access c ?mask ~kind:Access.Read addr

(* --- Sassoc basics --- *)

let test_sassoc_config () =
  let cfg = tiny_config () in
  check_int "sets" 4 cfg.Sassoc.sets;
  check_int "size" 256 (Sassoc.config_size_bytes cfg);
  check_int "column size" 64 (Sassoc.column_size_bytes cfg)

let test_sassoc_config_invalid () =
  check_bool "bad divide" true
    (try ignore (Sassoc.config ~size_bytes:100 ~ways:3 ()); false
     with Invalid_argument _ -> true);
  check_bool "non-pow2 line" true
    (try ignore (Sassoc.config ~line_size:24 ~size_bytes:768 ~ways:2 ()); false
     with Invalid_argument _ -> true)

let test_sassoc_hit_after_miss () =
  let c = Sassoc.create (tiny_config ()) in
  (match read_addr c 0x40 with
  | Sassoc.Miss _ -> ()
  | Sassoc.Hit _ -> Alcotest.fail "first access must miss");
  (match read_addr c 0x40 with
  | Sassoc.Hit _ -> ()
  | Sassoc.Miss _ -> Alcotest.fail "second access must hit");
  (* same line, different byte *)
  match read_addr c 0x4F with
  | Sassoc.Hit _ -> ()
  | Sassoc.Miss _ -> Alcotest.fail "same-line access must hit"

let test_sassoc_lru_eviction_order () =
  let c = Sassoc.create (tiny_config ()) in
  (* Five distinct lines mapping to set 0 (stride = sets*line = 64). *)
  let line i = i * 64 in
  for i = 0 to 3 do
    ignore (read_addr c (line i))
  done;
  ignore (read_addr c (line 0));
  (* set order now 0 MRU ... 1 LRU; filling line 4 must evict line 1, whose
     line address is 64/16 = 4 *)
  (match read_addr c (line 4) with
  | Sassoc.Miss { evicted_line; _ } ->
      check_bool "evicts LRU line" true (evicted_line = Some (line 1 / 16))
  | Sassoc.Hit _ -> Alcotest.fail "must miss");
  (match read_addr c (line 0) with
  | Sassoc.Hit _ -> ()
  | Sassoc.Miss _ -> Alcotest.fail "line 0 must survive")

let test_sassoc_mask_confines_fills () =
  let c = Sassoc.create (tiny_config ()) in
  let mask = Bitmask.of_list [ 1 ] in
  for i = 0 to 9 do
    match read_addr c ~mask (i * 64) with
    | Sassoc.Miss { way; _ } -> check_int "fills way 1" 1 way
    | Sassoc.Hit _ -> Alcotest.fail "distinct lines must miss"
  done;
  check_int "only one line kept in the column" 1
    (List.length (Sassoc.lines_in_column c 1));
  check_int "other columns untouched" 0 (List.length (Sassoc.lines_in_column c 0))

let test_sassoc_empty_mask_rejected () =
  let c = Sassoc.create (tiny_config ()) in
  check_bool "raises" true
    (try ignore (read_addr c ~mask:Bitmask.empty 0); false
     with Invalid_argument _ -> true)

(* Regression for the mask=0 path: the documented contract is that an empty
   EFFECTIVE mask raises — including a non-empty mask whose columns all lie
   beyond the cache's ways — on both access and fill, without perturbing
   statistics or contents. *)
let test_sassoc_effective_mask_zero () =
  let c = Sassoc.create (tiny_config ()) in
  (* tiny_config has 4 ways; column 5 exists in the mask type but not in
     this cache, so the effective mask is empty *)
  let beyond = Bitmask.singleton 5 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "access: out-of-range-only mask" true
    (raises (fun () -> ignore (read_addr c ~mask:beyond 0)));
  check_bool "fill: empty mask" true
    (raises (fun () -> ignore (Sassoc.fill c ~mask:Bitmask.empty 0)));
  check_bool "fill: out-of-range-only mask" true
    (raises (fun () -> ignore (Sassoc.fill c ~mask:beyond 0)));
  let s = Sassoc.stats c in
  check_int "no access counted" 0 s.Stats.accesses;
  check_int "no miss counted" 0 s.Stats.misses;
  check_int "nothing installed" 0 (Sassoc.valid_lines c);
  (* a partially out-of-range mask keeps its in-range columns *)
  match read_addr c ~mask:(Bitmask.of_list [ 2; 5 ]) 0 with
  | Sassoc.Miss { way = 2; _ } -> ()
  | _ -> Alcotest.fail "in-range column of a partial mask must be used"

let test_sassoc_set_inspection () =
  (* The hooks the differential oracle compares against. *)
  let c = Sassoc.create (tiny_config ()) in
  (* lines 0 and 4 both index set 0 (4 sets); line 1 indexes set 1 *)
  ignore (read_addr c ~mask:(Bitmask.singleton 1) 0x0);
  ignore (read_addr c ~mask:(Bitmask.singleton 3) 0x40);
  ignore (read_addr c 0x10);
  check_int "set of 0x0" 0 (Sassoc.set_of_addr c 0x0);
  check_int "set of 0x10" 1 (Sassoc.set_of_addr c 0x10);
  check_int "occupancy set 0" 2 (Sassoc.set_occupancy c 0);
  check_int "occupancy set 1" 1 (Sassoc.set_occupancy c 1);
  Alcotest.(check (list (pair int int)))
    "lines in set 0" [ (1, 0); (3, 4) ] (Sassoc.lines_in_set c 0);
  check_bool "occupied ways" true
    (Bitmask.equal (Bitmask.of_list [ 1; 3 ]) (Sassoc.occupied_ways c 0));
  check_bool "bad set rejected" true
    (try ignore (Sassoc.set_occupancy c 4); false
     with Invalid_argument _ -> true)

let test_sassoc_lookup_ignores_mask () =
  (* Graceful repartitioning: data cached under one mapping is still found
     when accessed under a disjoint mapping (Section 2.1). *)
  let c = Sassoc.create (tiny_config ()) in
  ignore (read_addr c ~mask:(Bitmask.singleton 0) 0x80);
  match read_addr c ~mask:(Bitmask.singleton 3) 0x80 with
  | Sassoc.Hit { way } -> check_int "found in old column" 0 way
  | Sassoc.Miss _ -> Alcotest.fail "remapped data must still hit"

let test_sassoc_scratchpad_exclusivity () =
  (* A region the size of one column, mapped exclusively to that column and
     preloaded, never misses again even under heavy interference confined to
     the other columns. *)
  let cfg = tiny_config () in
  let c = Sassoc.create cfg in
  let colsize = Sassoc.column_size_bytes cfg in
  let pad_mask = Bitmask.singleton 2 in
  let other_mask = Bitmask.complement ~n:4 pad_mask in
  (* preload the scratchpad region *)
  let lines = colsize / cfg.Sassoc.line_size in
  for i = 0 to lines - 1 do
    ignore (read_addr c ~mask:pad_mask (i * cfg.Sassoc.line_size))
  done;
  (* interference traffic elsewhere *)
  for i = 0 to 499 do
    ignore (read_addr c ~mask:other_mask (0x10000 + (i * 16)))
  done;
  for i = 0 to lines - 1 do
    match read_addr c ~mask:pad_mask (i * cfg.Sassoc.line_size) with
    | Sassoc.Hit _ -> ()
    | Sassoc.Miss _ -> Alcotest.fail "scratchpad line was evicted"
  done

let test_sassoc_full_mask_is_standard () =
  (* With the full mask the column cache behaves exactly like a standard
     set-associative cache: same hit/miss sequence. *)
  let cfg = tiny_config () in
  let a = Sassoc.create cfg and b = Sassoc.create cfg in
  let full = Bitmask.full ~n:4 in
  let trace =
    Memtrace.Synthetic.uniform_random ~seed:11 ~base:0 ~span:2048 ~count:800 ()
  in
  Trace.iter
    (fun acc ->
      let ra = Sassoc.access a ~kind:acc.Access.kind acc.Access.addr in
      let rb = Sassoc.access b ~mask:full ~kind:acc.Access.kind acc.Access.addr in
      let is_hit = function Sassoc.Hit _ -> true | Sassoc.Miss _ -> false in
      check_bool "same outcome" (is_hit ra) (is_hit rb))
    trace

let test_sassoc_stats_accounting () =
  let c = Sassoc.create (tiny_config ()) in
  ignore (read_addr c 0);
  ignore (read_addr c 0);
  ignore (read_addr c 64);
  let s = Sassoc.stats c in
  check_int "accesses" 3 s.Stats.accesses;
  check_int "hits" 1 s.Stats.hits;
  check_int "misses" 2 s.Stats.misses;
  check_bool "rates" true
    (abs_float (Stats.miss_rate s -. (2. /. 3.)) < 1e-9)

let test_sassoc_writeback () =
  let c = Sassoc.create (tiny_config ()) in
  ignore (Sassoc.access c ~kind:Access.Write 0);
  (* evict line 0 from set 0 by filling the set with reads *)
  for i = 1 to 4 do
    ignore (read_addr c (i * 64))
  done;
  let s = Sassoc.stats c in
  check_int "one writeback" 1 s.Stats.writebacks

let test_sassoc_classification () =
  let cfg = tiny_config ~classify:true () in
  let c = Sassoc.create cfg in
  (* 16 lines = capacity; walk 17 distinct lines twice. First pass: all cold.
     Second pass: the 17-line working set exceeds capacity 16 -> capacity
     misses under LRU (cyclic walk evicts just-needed lines). *)
  for _ = 1 to 2 do
    for i = 0 to 16 do
      ignore (read_addr c (i * 64))
    done
  done;
  let s = Sassoc.stats c in
  check_int "cold = distinct lines" 17 s.Stats.cold_misses;
  check_bool "classified misses sum" true
    (s.Stats.cold_misses + s.Stats.capacity_misses + s.Stats.conflict_misses
     = s.Stats.misses)

let test_sassoc_conflict_classification () =
  (* Two lines in the same set of a direct-mapped-ish restriction produce
     conflict misses: working set (2 lines) fits total capacity easily. *)
  let cfg =
    Sassoc.config ~line_size:16 ~classify:true ~size_bytes:256 ~ways:1 ()
  in
  let c = Sassoc.create cfg in
  (* 16 sets; addresses 0 and 256 share set 0 under ways=1, sets=16 *)
  for _ = 1 to 10 do
    ignore (read_addr c 0);
    ignore (read_addr c 256)
  done;
  let s = Sassoc.stats c in
  check_int "cold" 2 s.Stats.cold_misses;
  check_bool "mostly conflict" true (s.Stats.conflict_misses >= 16);
  check_int "no capacity misses" 0 s.Stats.capacity_misses

let test_sassoc_flush_preserves_stats () =
  let c = Sassoc.create (tiny_config ()) in
  ignore (read_addr c 0);
  Sassoc.flush c;
  check_int "no valid lines" 0 (Sassoc.valid_lines c);
  check_int "stats kept" 1 (Sassoc.stats c).Stats.accesses;
  match read_addr c 0 with
  | Sassoc.Miss _ -> ()
  | Sassoc.Hit _ -> Alcotest.fail "flushed line must miss"

let test_sassoc_invalidate_line () =
  let c = Sassoc.create (tiny_config ()) in
  ignore (read_addr c 0x40);
  Sassoc.invalidate_line c (0x40 / 16);
  check_bool "probe misses" true (Sassoc.probe c 0x40 = None)

let test_sassoc_probe_no_side_effect () =
  let c = Sassoc.create (tiny_config ()) in
  ignore (read_addr c 0);
  let before = (Sassoc.stats c).Stats.accesses in
  ignore (Sassoc.probe c 0);
  ignore (Sassoc.probe c 999);
  check_int "probe does not count" before (Sassoc.stats c).Stats.accesses

(* --- policies --- *)

let test_policy_fifo_vs_lru () =
  (* FIFO evicts first-filled even if recently used; LRU keeps it. *)
  let run policy =
    let c = Sassoc.create (tiny_config ~policy ()) in
    for i = 0 to 3 do
      ignore (read_addr c (i * 64))
    done;
    ignore (read_addr c 0);
    (* re-use line 0 *)
    ignore (read_addr c (4 * 64));
    (* force an eviction *)
    match read_addr c 0 with Sassoc.Hit _ -> true | Sassoc.Miss _ -> false
  in
  check_bool "lru keeps reused line" true (run Policy.Lru);
  check_bool "fifo evicts first fill" false (run Policy.Fifo)

let test_policy_random_deterministic () =
  let run seed =
    let c = Sassoc.create (tiny_config ~policy:(Policy.Random seed) ()) in
    let t = Memtrace.Synthetic.uniform_random ~seed:5 ~base:0 ~span:4096 ~count:500 () in
    Trace.iter (fun a -> ignore (Sassoc.access_record c a)) t;
    (Sassoc.stats c).Stats.hits
  in
  check_int "same seed reproduces" (run 42) (run 42)

let test_policy_plru_sane () =
  let c = Sassoc.create (tiny_config ~policy:Policy.Bit_plru ()) in
  for i = 0 to 7 do
    ignore (read_addr c (i * 64))
  done;
  let s = Sassoc.stats c in
  check_int "eight misses" 8 s.Stats.misses;
  (* a just-filled line is MRU and must hit immediately *)
  match read_addr c (7 * 64) with
  | Sassoc.Hit _ -> ()
  | Sassoc.Miss _ -> Alcotest.fail "MRU line evicted by PLRU"

let test_policy_kind_strings () =
  List.iter
    (fun k ->
      match Policy.kind_of_string (Policy.kind_to_string k) with
      | Some k' -> check_bool "roundtrip" true (k = k')
      | None -> Alcotest.fail "kind string roundtrip failed")
    Policy.all_kinds;
  check_bool "unknown" true (Policy.kind_of_string "bogus" = None)

(* --- column cache composition --- *)

let test_column_cache_partition_isolation () =
  (* Two streams that would thrash a shared cache stop interfering once
     mapped to disjoint columns. *)
  let cfg = Sassoc.config ~line_size:16 ~size_bytes:512 ~ways:2 () in
  let colsize = Sassoc.column_size_bytes cfg in
  (* stream A: fits one column; stream B: large streaming sweep *)
  let a_trace i = i mod (colsize / 16) * 16 in
  let b_trace i = 0x100000 + (i * 16) in
  (* B issues four streaming accesses per A access, so in the shared cache B
     displaces A's lines faster than A revisits them. *)
  let run mask_of =
    let cc = Column_cache.create cfg ~mask_of in
    let hits_a = ref 0 and total_a = ref 0 in
    for i = 0 to 4000 do
      let ra = Column_cache.access cc (Access.make (a_trace i)) in
      incr total_a;
      (match ra with Sassoc.Hit _ -> incr hits_a | Sassoc.Miss _ -> ());
      for j = 0 to 3 do
        ignore (Column_cache.access cc (Access.make (b_trace ((4 * i) + j))))
      done
    done;
    float_of_int !hits_a /. float_of_int !total_a
  in
  let shared = run (fun _ -> Bitmask.full ~n:2) in
  let partitioned =
    run (fun addr -> if addr < 0x100000 then Bitmask.singleton 0 else Bitmask.singleton 1)
  in
  check_bool
    (Printf.sprintf "partitioned (%.3f) beats shared (%.3f)" partitioned shared)
    true
    (partitioned > shared +. 0.2)

let test_column_cache_remap () =
  let cfg = tiny_config () in
  let cc = Column_cache.create cfg ~mask_of:(fun _ -> Bitmask.singleton 0) in
  ignore (Column_cache.access cc (Access.make 0));
  Column_cache.set_mask_of cc (fun _ -> Bitmask.singleton 1);
  (* data still found in the old column after remap *)
  match Column_cache.access cc (Access.make 0) with
  | Sassoc.Hit { way } -> check_int "old column" 0 way
  | Sassoc.Miss _ -> Alcotest.fail "remap must not lose cached data"

let test_column_cache_run_stats () =
  let cc = Column_cache.standard (tiny_config ()) in
  let t = Trace.of_list [ Access.make 0; Access.make 0; Access.make 64 ] in
  let s = Column_cache.run cc t in
  check_int "accesses" 3 s.Stats.accesses;
  check_int "hits" 1 s.Stats.hits

(* --- cache properties --- *)

let arb_small_trace =
  QCheck.make
    ~print:(fun t -> Trace.to_string t)
    QCheck.Gen.(
      map
        (fun addrs -> Trace.of_list (List.map (fun a -> Access.make (a * 4)) addrs))
        (list_size (int_bound 300) (int_bound 1024)))

let prop_hits_plus_misses =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:100 arb_small_trace
    (fun t ->
      let c = Sassoc.create (tiny_config ~classify:true ()) in
      Trace.iter (fun a -> ignore (Sassoc.access_record c a)) t;
      let s = Sassoc.stats c in
      s.Stats.hits + s.Stats.misses = s.Stats.accesses
      && s.Stats.cold_misses + s.Stats.capacity_misses + s.Stats.conflict_misses
         = s.Stats.misses)

let prop_valid_lines_bounded =
  QCheck.Test.make ~name:"valid lines never exceed capacity" ~count:100
    arb_small_trace (fun t ->
      let cfg = tiny_config () in
      let c = Sassoc.create cfg in
      Trace.iter (fun a -> ignore (Sassoc.access_record c a)) t;
      Sassoc.valid_lines c <= cfg.Sassoc.sets * cfg.Sassoc.ways)

let prop_repeat_all_hits =
  QCheck.Test.make ~name:"second pass over cache-resident set always hits" ~count:50
    (QCheck.int_range 1 16) (fun nlines ->
      (* nlines distinct lines all mapping to distinct sets; fits cache *)
      let c = Sassoc.create (tiny_config ()) in
      let addrs = List.init nlines (fun i -> i * 16) in
      List.iter (fun a -> ignore (read_addr c a)) addrs;
      List.for_all
        (fun a -> match read_addr c a with Sassoc.Hit _ -> true | _ -> false)
        addrs)

let prop_mask_restricts_fills =
  QCheck.Test.make ~name:"fills only land in allowed columns" ~count:100
    (QCheck.pair arb_mask arb_small_trace) (fun (mask, t) ->
      let mask = Bitmask.inter mask (Bitmask.full ~n:4) in
      QCheck.assume (not (Bitmask.is_empty mask));
      let c = Sassoc.create (tiny_config ()) in
      let ok = ref true in
      Trace.iter
        (fun a ->
          match Sassoc.access_record c ~mask a with
          | Sassoc.Miss { way; _ } -> if not (Bitmask.mem mask way) then ok := false
          | Sassoc.Hit _ -> ())
        t;
      !ok)

let prop_graceful_repartition =
  QCheck.Test.make ~name:"remapping never turns a resident line into a miss" ~count:60
    arb_small_trace (fun t ->
      let c = Sassoc.create (tiny_config ()) in
      (* warm with mask {0,1} *)
      let warm = Bitmask.of_list [ 0; 1 ] in
      Trace.iter (fun a -> ignore (Sassoc.access_record c ~mask:warm a)) t;
      (* every currently-resident line must hit under any new mask *)
      let resident =
        List.concat_map (fun w -> Sassoc.lines_in_column c w) [ 0; 1; 2; 3 ]
      in
      List.for_all
        (fun line ->
          match
            Sassoc.access c ~mask:(Bitmask.singleton 3) ~kind:Access.Read (line * 16)
          with
          | Sassoc.Hit _ -> true
          | Sassoc.Miss _ -> false)
        resident)

(* --- model-based checking: Sassoc vs a naive reference cache --- *)

(* An obviously-correct (and obviously slow) set-associative cache: each set
   is a list of line tags ordered most-recently-used first (LRU) or by fill
   order (FIFO). Replacement restricted to [allowed] ways is modelled by
   keeping (way, tag) pairs and evicting the eligible victim. *)
module Reference = struct
  type t = {
    sets : int;
    ways : int;
    line_size : int;
    policy : Policy.kind;
    mutable clock : int;
    (* per set: (way, tag, last_use, fill_time) *)
    table : (int * int * int * int) list array;
  }

  let create ~sets ~ways ~line_size ~policy =
    { sets; ways; line_size; policy; clock = 0; table = Array.make sets [] }

  let access t ~allowed addr =
    t.clock <- t.clock + 1;
    let line = addr / t.line_size in
    let set = line mod t.sets in
    let tag = line / t.sets in
    let entries = t.table.(set) in
    match List.find_opt (fun (_, tg, _, _) -> tg = tag) entries with
    | Some (way, _, _, fill) ->
        t.table.(set) <-
          (way, tag, t.clock, fill)
          :: List.filter (fun (_, tg, _, _) -> tg <> tag) entries;
        `Hit
    | None ->
        let used_ways = List.map (fun (w, _, _, _) -> w) entries in
        let free =
          List.filter
            (fun w -> not (List.mem w used_ways))
            (Bitmask.to_list allowed)
        in
        let victim_way =
          match free with
          | w :: _ -> w
          | [] ->
              (* evict eligible entry with the smallest timestamp *)
              let eligible =
                List.filter (fun (w, _, _, _) -> Bitmask.mem allowed w) entries
              in
              let key (_, _, last, fill) =
                match t.policy with
                | Policy.Lru -> last
                | Policy.Fifo -> fill
                | Policy.Bit_plru | Policy.Random _ -> assert false
              in
              let best =
                List.fold_left
                  (fun acc e ->
                    match acc with
                    | None -> Some e
                    | Some b -> if key e < key b then Some e else acc)
                  None eligible
              in
              (match best with Some (w, _, _, _) -> w | None -> assert false)
        in
        t.table.(set) <-
          (victim_way, tag, t.clock, t.clock)
          :: List.filter (fun (w, _, _, _) -> w <> victim_way) entries;
        `Miss
end

let prop_matches_reference policy name =
  QCheck.Test.make ~name ~count:60
    (QCheck.pair arb_mask arb_small_trace)
    (fun (mask, t) ->
      let mask = Bitmask.inter mask (Bitmask.full ~n:4) in
      QCheck.assume (not (Bitmask.is_empty mask));
      let cfg = tiny_config ~policy () in
      let c = Sassoc.create cfg in
      let r =
        Reference.create ~sets:cfg.Sassoc.sets ~ways:cfg.Sassoc.ways
          ~line_size:cfg.Sassoc.line_size ~policy
      in
      let ok = ref true in
      Trace.iter
        (fun a ->
          let got =
            match Sassoc.access_record c ~mask a with
            | Sassoc.Hit _ -> `Hit
            | Sassoc.Miss _ -> `Miss
          in
          let expected = Reference.access r ~allowed:mask a.Access.addr in
          if got <> expected then ok := false)
        t;
      !ok)

let prop_lru_matches_reference =
  prop_matches_reference Policy.Lru "sassoc LRU matches reference model"

let prop_fifo_matches_reference =
  prop_matches_reference Policy.Fifo "sassoc FIFO matches reference model"

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mask_roundtrip;
      prop_mask_demorgan;
      prop_mask_union_count;
      prop_lru_set_capacity;
      prop_lru_set_model;
      prop_hits_plus_misses;
      prop_valid_lines_bounded;
      prop_repeat_all_hits;
      prop_mask_restricts_fills;
      prop_graceful_repartition;
      prop_lru_matches_reference;
      prop_fifo_matches_reference;
    ]

let suites =
  [
    ( "cache.bitmask",
      [
        Alcotest.test_case "basic" `Quick test_bitmask_basic;
        Alcotest.test_case "set ops" `Quick test_bitmask_ops;
        Alcotest.test_case "full/complement" `Quick test_bitmask_full_complement;
        Alcotest.test_case "range" `Quick test_bitmask_range;
        Alcotest.test_case "string" `Quick test_bitmask_string;
        Alcotest.test_case "bounds" `Quick test_bitmask_bounds;
      ] );
    ( "cache.lru_set",
      [
        Alcotest.test_case "basic" `Quick test_lru_set_basic;
        Alcotest.test_case "remove/clear" `Quick test_lru_set_remove_clear;
      ] );
    ( "cache.sassoc",
      [
        Alcotest.test_case "config" `Quick test_sassoc_config;
        Alcotest.test_case "config invalid" `Quick test_sassoc_config_invalid;
        Alcotest.test_case "hit after miss" `Quick test_sassoc_hit_after_miss;
        Alcotest.test_case "LRU eviction order" `Quick test_sassoc_lru_eviction_order;
        Alcotest.test_case "mask confines fills" `Quick test_sassoc_mask_confines_fills;
        Alcotest.test_case "empty mask rejected" `Quick test_sassoc_empty_mask_rejected;
        Alcotest.test_case "effective mask zero" `Quick test_sassoc_effective_mask_zero;
        Alcotest.test_case "set inspection hooks" `Quick test_sassoc_set_inspection;
        Alcotest.test_case "lookup ignores mask" `Quick test_sassoc_lookup_ignores_mask;
        Alcotest.test_case "scratchpad exclusivity" `Quick test_sassoc_scratchpad_exclusivity;
        Alcotest.test_case "full mask = standard" `Quick test_sassoc_full_mask_is_standard;
        Alcotest.test_case "stats accounting" `Quick test_sassoc_stats_accounting;
        Alcotest.test_case "writeback" `Quick test_sassoc_writeback;
        Alcotest.test_case "3C classification" `Quick test_sassoc_classification;
        Alcotest.test_case "conflict classification" `Quick test_sassoc_conflict_classification;
        Alcotest.test_case "flush keeps stats" `Quick test_sassoc_flush_preserves_stats;
        Alcotest.test_case "invalidate line" `Quick test_sassoc_invalidate_line;
        Alcotest.test_case "probe is pure" `Quick test_sassoc_probe_no_side_effect;
      ] );
    ( "cache.policy",
      [
        Alcotest.test_case "fifo vs lru" `Quick test_policy_fifo_vs_lru;
        Alcotest.test_case "random deterministic" `Quick test_policy_random_deterministic;
        Alcotest.test_case "plru sane" `Quick test_policy_plru_sane;
        Alcotest.test_case "kind strings" `Quick test_policy_kind_strings;
      ] );
    ( "cache.column_cache",
      [
        Alcotest.test_case "partition isolation" `Quick test_column_cache_partition_isolation;
        Alcotest.test_case "remap keeps data" `Quick test_column_cache_remap;
        Alcotest.test_case "run stats" `Quick test_column_cache_run_stats;
      ] );
    ("cache.properties", qcheck_cases);
  ]
