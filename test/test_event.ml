(* Tests for the event-driven timing core: the banked DRAM model, the MSHR
   file, the System event-replay paths, the epoch-synchronized multitask
   scheduler, and the knob validation the CLI relies on. *)

module Access = Memtrace.Access
module Packed = Memtrace.Packed
module Trace = Memtrace.Trace
module Sassoc = Cache.Sassoc
module Timing = Machine.Timing
module Dram = Machine.Dram
module Mshr = Machine.Mshr
module Event = Machine.Event
module System = Machine.System
module Run_stats = Machine.Run_stats
module Latency = Machine.Latency
module Epoch = Sched.Epoch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* --- knob validation: bad geometry is an error, never a clamp --- *)

let test_event_config_rejects_mlp () =
  check_bool "mlp 0" true (raises_invalid (fun () -> Event.config ~mlp:0 ()));
  check_bool "mlp -1" true
    (raises_invalid (fun () -> Event.config ~mlp:(-1) ()))

let test_dram_config_rejects_knobs () =
  check_bool "banks 0" true
    (raises_invalid (fun () -> Dram.config ~banks:0 ()));
  check_bool "row_bytes 0" true
    (raises_invalid (fun () -> Dram.config ~row_bytes:0 ()));
  check_bool "queue_depth 0" true
    (raises_invalid (fun () -> Dram.config ~queue_depth:0 ()))

let test_dram_create_rejects_bad_timing () =
  check_bool "zero row-hit latency" true
    (raises_invalid (fun () ->
         Dram.create
           { Timing.default with Timing.dram_row_hit_cycles = 0 }
           (Dram.config ())));
  check_bool "conflict below row hit" true
    (raises_invalid (fun () ->
         Dram.create
           { Timing.default with Timing.dram_row_conflict_cycles = 5 }
           (Dram.config ())))

let test_mshr_rejects_zero_size () =
  check_bool "size 0" true (raises_invalid (fun () -> Mshr.create ~size:0))

let small_job name base n =
  {
    Epoch.name;
    packed =
      Packed.of_list (List.init n (fun i -> Access.make (base + (i * 16))));
  }

let epoch_system (_ : Epoch.job) =
  System.create
    (System.config (Sassoc.config ~line_size:16 ~size_bytes:512 ~ways:2 ()))

let test_epoch_rejects_bad_jobs () =
  let tasks = [ small_job "A" 0 8; small_job "B" 0x1000 8 ] in
  check_bool "jobs 0" true
    (raises_invalid (fun () ->
         Epoch.run ~jobs:0 ~make_system:epoch_system tasks));
  check_bool "more domains than tasks" true
    (raises_invalid (fun () ->
         Epoch.run ~jobs:3 ~make_system:epoch_system tasks));
  check_bool "empty task list" true
    (raises_invalid (fun () -> Epoch.run ~make_system:epoch_system []));
  check_bool "epoch_accesses 0" true
    (raises_invalid (fun () ->
         Epoch.run ~epoch_accesses:0 ~make_system:epoch_system tasks))

(* --- DRAM: hand-computed semantics --- *)

let test_dram_open_row_semantics () =
  (* Same row twice on a cold bank: activation (conflict) then open-row
     hit, back to back on the single bank resource. *)
  let d = Dram.create Timing.default (Dram.config ~banks:2 ~row_bytes:64 ()) in
  let a = Dram.request d ~now:0 ~addr:0 in
  check_int "cold start" 0 a.Dram.start;
  check_int "cold pays activation" 28 a.Dram.finish;
  check_bool "cold is not a row hit" false a.Dram.row_hit;
  let b = Dram.request d ~now:0 ~addr:16 in
  check_bool "same row hits" true b.Dram.row_hit;
  check_int "bank is serial" 28 b.Dram.start;
  check_int "open-row latency" 40 b.Dram.finish;
  (* row 1 lands on the other bank and proceeds in parallel *)
  let c = Dram.request d ~now:0 ~addr:64 in
  check_int "row-interleaved bank" 1 c.Dram.bank;
  check_int "other bank starts immediately" 0 c.Dram.start;
  let s = Dram.stats d in
  check_int "totals" 3 s.Dram.total;
  check_int "hits" 1 s.Dram.hits;
  check_int "conflicts" 2 s.Dram.conflicts

let test_dram_queue_bounds_flight () =
  (* queue_depth 1: the second request waits for the first to complete
     even on a different bank. *)
  let d =
    Dram.create Timing.default
      (Dram.config ~banks:4 ~row_bytes:64 ~queue_depth:1 ())
  in
  let a = Dram.request d ~now:0 ~addr:0 in
  check_int "first finishes" 28 a.Dram.finish;
  let b = Dram.request d ~now:0 ~addr:64 in
  check_int "admitted when the channel drains" 28 b.Dram.start;
  check_int "one queue stall" 1 (Dram.stats d).Dram.stalls

(* --- DRAM: qcheck properties --- *)

(* A random issue sequence: per request a small time gap and an address. *)
let arb_dram_trace =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (g, a) -> Printf.sprintf "+%d:0x%x" g a) l))
    QCheck.Gen.(
      list_size (int_range 1 60)
        (pair (int_bound 40) (int_bound 4095)))

let replay_dram cfg trace =
  let d = Dram.create Timing.default cfg in
  let now = ref 0 in
  let outs =
    List.map
      (fun (gap, addr) ->
        now := !now + gap;
        Dram.request d ~now:!now ~addr)
      trace
  in
  (outs, Dram.stats d)

let prop_dram_deterministic =
  QCheck.Test.make ~name:"dram: fixed sequence, identical outcomes" ~count:200
    arb_dram_trace (fun trace ->
      let cfg = Dram.config ~banks:2 ~row_bytes:256 ~queue_depth:4 () in
      replay_dram cfg trace = replay_dram cfg trace)

let prop_dram_row_hit_cheaper =
  QCheck.Test.make
    ~name:"dram: row hits price strictly below row conflicts" ~count:200
    arb_dram_trace (fun trace ->
      let outs, _ =
        replay_dram (Dram.config ~banks:2 ~row_bytes:256 ()) trace
      in
      List.for_all
        (fun (o : Dram.outcome) ->
          let service = o.Dram.finish - o.Dram.start in
          if o.Dram.row_hit then
            service = Timing.default.Timing.dram_row_hit_cycles
          else service = Timing.default.Timing.dram_row_conflict_cycles)
        outs
      && Timing.default.Timing.dram_row_hit_cycles
         < Timing.default.Timing.dram_row_conflict_cycles)

let prop_dram_bank_fifo =
  QCheck.Test.make ~name:"dram: per-bank service is FIFO and serial"
    ~count:200 arb_dram_trace (fun trace ->
      let cfg = Dram.config ~banks:3 ~row_bytes:128 ~queue_depth:4 () in
      let outs, _ = replay_dram cfg trace in
      let last_finish = Array.make cfg.Dram.banks 0 in
      List.for_all
        (fun (o : Dram.outcome) ->
          let ok =
            o.Dram.start >= last_finish.(o.Dram.bank)
            && o.Dram.finish > o.Dram.start
          in
          last_finish.(o.Dram.bank) <- o.Dram.finish;
          ok)
        outs)

(* --- MSHR merges never change functional counts --- *)

(* Strip the fields the event core is allowed to change: time and its own
   MSHR/DRAM telemetry. Everything else must match the blocking replay. *)
let functional_counts (r : Run_stats.t) =
  {
    r with
    Run_stats.cycles = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    dram_row_hits = 0;
    dram_row_conflicts = 0;
  }

let arb_access_trace =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (Printf.sprintf "0x%x") l))
    QCheck.Gen.(list_size (int_range 1 120) (int_bound 1023))

let prop_event_counts_match_inorder =
  QCheck.Test.make
    ~name:"event core: merged misses never change functional counts"
    ~count:150 arb_access_trace (fun addrs ->
      (* A tiny cache over a tiny footprint so delayed hits (merges) and
         MSHR stalls are both frequent. *)
      let fresh () =
        System.create
          (System.config
             (Sassoc.config ~line_size:16 ~size_bytes:128 ~ways:2 ()))
      in
      let packed = Packed.of_list (List.map Access.make addrs) in
      let inorder = System.run_packed (fresh ()) packed in
      let events =
        Event.config ~mlp:2
          ~dram:(Dram.config ~banks:2 ~row_bytes:64 ~queue_depth:2 ())
          ()
      in
      let event = System.run_packed_events (fresh ()) ~events packed in
      functional_counts inorder = functional_counts event)

(* --- request latency: retire minus issue, not a per-access sum --- *)

let test_latency_no_double_count () =
  (* Two cold read misses to different DRAM banks in one request window,
     mlp 2. Blocking: each access pays TLB walk (8) + probe (1) + flat
     miss penalty (20), so the window is 58 cycles. Event core: the
     second fill overlaps the first — issue 0, TLB+probe put the demand
     fetches at t=9 (bank 0) and t=18 (bank 1), both cold activations
     (28), so the window retires at 18 + 28 = 46. The naive per-access
     sum would be (37 - 0) + (46 - 9) = 74, double-counting the overlap;
     retire-minus-issue must report 46. *)
  let packed =
    Packed.of_list [ Access.make 0x000; Access.make 0x400 ]
  in
  let requests = [| (0, 2) |] in
  let fresh () =
    System.create
      (System.config (Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ()))
  in
  let blocking = System.run_packed_requests (fresh ()) packed ~requests in
  check_int "blocking window" 58 (Latency.p50 blocking.Run_stats.requests);
  let events =
    Event.config ~mlp:2
      ~dram:(Dram.config ~banks:4 ~row_bytes:1024 ~queue_depth:8 ())
      ()
  in
  let event =
    System.run_packed_requests_events (fresh ()) ~events packed ~requests
  in
  check_int "one request measured" 1 (Latency.count event.Run_stats.requests);
  check_int "overlapped window is retire minus issue" 46
    (Latency.p50 event.Run_stats.requests);
  check_int "run clock drains to the last fill" 46 event.Run_stats.cycles;
  check_bool "overlap beats the blocking window" true
    (Latency.p50 event.Run_stats.requests
    < Latency.p50 blocking.Run_stats.requests)

let test_event_mlp1_still_merges () =
  (* Even with a single MSHR a hit on the in-flight line is a delayed hit,
     not a second fill: same line touched twice back to back. *)
  let packed = Packed.of_list [ Access.make 0x0; Access.make 0x4 ] in
  let sys =
    System.create
      (System.config (Sassoc.config ~line_size:16 ~size_bytes:256 ~ways:2 ()))
  in
  let stats =
    System.run_packed_events sys ~events:(Event.config ~mlp:1 ()) packed
  in
  check_int "one miss" 1 stats.Run_stats.cache.Cache.Stats.misses;
  check_int "one hit" 1 stats.Run_stats.cache.Cache.Stats.hits;
  check_int "the hit merged into the fill" 1 stats.Run_stats.mshr_merges

let test_event_mshr_stalls_counted () =
  (* mlp 1 and three cold misses: the second and third must wait for the
     only slot to drain. *)
  let packed =
    Packed.of_list [ Access.make 0x0; Access.make 0x40; Access.make 0x80 ]
  in
  let sys =
    System.create
      (System.config (Sassoc.config ~line_size:16 ~size_bytes:256 ~ways:2 ()))
  in
  let stats =
    System.run_packed_events sys ~events:(Event.config ~mlp:1 ()) packed
  in
  check_int "structural stalls" 2 stats.Run_stats.mshr_stalls

(* --- the epoch scheduler --- *)

let epoch_jobs () =
  [ small_job "A" 0 40; small_job "B" 0x10000 25; small_job "C" 0x20000 60 ]

let test_epoch_all_work_completes () =
  let out = Epoch.run ~epoch_accesses:16 ~make_system:epoch_system (epoch_jobs ()) in
  List.iter
    (fun (name, n) ->
      match Epoch.find_job out name with
      | Some s ->
          check_int (name ^ " accesses") n
            s.Epoch.stats.Run_stats.memory_accesses
      | None -> Alcotest.fail "missing job")
    [ ("A", 40); ("B", 25); ("C", 60) ];
  check_int "timeline length is the longest job" 4 out.Epoch.epochs

let test_epoch_outcome_independent_of_jobs () =
  (* The whole outcome — every counter, every epoch boundary, the
     makespan — must be structurally identical whatever the worker-domain
     count; only wall-clock time may change. *)
  let run jobs =
    Epoch.run ~jobs ~epoch_accesses:16 ~make_system:epoch_system
      (epoch_jobs ())
  in
  let serial = run 1 in
  check_bool "jobs=2 replays identically" true (serial = run 2);
  check_bool "jobs=3 replays identically" true (serial = run 3)

let test_epoch_events_outcome_independent_of_jobs () =
  let events =
    Event.config ~mlp:2 ~dram:(Dram.config ~banks:2 ~queue_depth:2 ()) ()
  in
  let run jobs =
    Epoch.run ~jobs ~epoch_accesses:16 ~events ~make_system:epoch_system
      (epoch_jobs ())
  in
  let serial = run 1 in
  check_bool "event replay is domain-count invariant" true (serial = run 3)

let test_epoch_makespan_is_gang_max () =
  (* One epoch per job (epoch_accesses beyond every trace): the gang
     timeline advances by the slowest job, so the makespan is the max of
     the per-job cycles and every job finishes at that boundary. *)
  let out = Epoch.run ~epoch_accesses:4096 ~make_system:epoch_system (epoch_jobs ()) in
  let cycles =
    List.map
      (fun (s : Epoch.job_stats) -> s.Epoch.stats.Run_stats.cycles)
      out.Epoch.per_job
  in
  check_int "single gang epoch" 1 out.Epoch.epochs;
  check_int "makespan is the slowest job" (List.fold_left max 0 cycles)
    out.Epoch.makespan

let test_multitask_experiment_agrees_across_jobs () =
  let t = Colcache.Experiments.Multitask_domains.run ~jobs:2 () in
  check_bool "parallel outcome identical to serial" true
    t.Colcache.Experiments.Multitask_domains.identical_across_jobs;
  check_int "one row per task"
    Colcache.Experiments.Multitask_domains.task_count
    (List.length t.Colcache.Experiments.Multitask_domains.rows)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dram_deterministic;
      prop_dram_row_hit_cheaper;
      prop_dram_bank_fifo;
      prop_event_counts_match_inorder;
    ]

let suites =
  [
    ( "machine.event.knobs",
      [
        Alcotest.test_case "Event.config rejects mlp < 1" `Quick
          test_event_config_rejects_mlp;
        Alcotest.test_case "Dram.config rejects zero knobs" `Quick
          test_dram_config_rejects_knobs;
        Alcotest.test_case "Dram.create rejects bad timing" `Quick
          test_dram_create_rejects_bad_timing;
        Alcotest.test_case "Mshr.create rejects size 0" `Quick
          test_mshr_rejects_zero_size;
        Alcotest.test_case "Epoch.run rejects bad job counts" `Quick
          test_epoch_rejects_bad_jobs;
      ] );
    ( "machine.event.dram",
      Alcotest.test_case "open-row semantics, hand-computed" `Quick
        test_dram_open_row_semantics
      :: Alcotest.test_case "channel queue bounds flight" `Quick
           test_dram_queue_bounds_flight
      :: qcheck_cases );
    ( "machine.event.system",
      [
        Alcotest.test_case "request latency is retire minus issue" `Quick
          test_latency_no_double_count;
        Alcotest.test_case "delayed hit merges at mlp 1" `Quick
          test_event_mlp1_still_merges;
        Alcotest.test_case "MSHR structural stalls counted" `Quick
          test_event_mshr_stalls_counted;
      ] );
    ( "sched.epoch",
      [
        Alcotest.test_case "all work completes" `Quick
          test_epoch_all_work_completes;
        Alcotest.test_case "outcome independent of worker domains" `Quick
          test_epoch_outcome_independent_of_jobs;
        Alcotest.test_case "event outcome independent of domains" `Quick
          test_epoch_events_outcome_independent_of_jobs;
        Alcotest.test_case "makespan is the gang max" `Quick
          test_epoch_makespan_is_gang_max;
        Alcotest.test_case "multitask experiment domain-invariant" `Quick
          test_multitask_experiment_agrees_across_jobs;
      ] );
  ]
