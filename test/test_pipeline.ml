(* Integration tests: the full pipeline and the paper's experiment shapes.
   These encode the reproduction targets from EXPERIMENTS.md as assertions,
   so `dune runtest` fails if a change breaks a paper-level result. *)

module Pipeline = Colcache.Pipeline
module Experiments = Colcache.Experiments
module Run_stats = Machine.Run_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mpeg =
  lazy
    (Pipeline.make ~init:Workloads.Mpeg.init
       ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       Workloads.Mpeg.program)

let cycles_at proc scratchpad_columns =
  let t = Lazy.force mpeg in
  let stats, _ =
    Pipeline.run_partitioned t ~proc ~scratchpad_columns
      ~meth:Pipeline.Profile_based
  in
  stats.Run_stats.cycles

(* --- pipeline mechanics --- *)

let test_trace_of_is_deterministic () =
  let t = Lazy.force mpeg in
  let a = Pipeline.trace_of t ~proc:"plus" in
  let b = Pipeline.trace_of t ~proc:"plus" in
  check_bool "deterministic" true (Memtrace.Trace.equal a b)

let test_summaries_cover_all_vars () =
  let t = Lazy.force mpeg in
  List.iter
    (fun meth ->
      let summaries = Pipeline.summaries t ~proc:"dequant" ~meth in
      List.iter
        (fun v -> check_bool (v ^ " summarized") true (List.mem_assoc v summaries))
        [ "coeff"; "dq"; "quant_tbl"; "qscale" ])
    [ Pipeline.Profile_based; Pipeline.Program_analysis ]

let test_run_partitioned_zero_misses_full_scratchpad () =
  let t = Lazy.force mpeg in
  let stats, part =
    Pipeline.run_partitioned t ~proc:"dequant" ~scratchpad_columns:4
      ~meth:Pipeline.Profile_based
  in
  check_int "dequant fully pinned, no misses" 0
    stats.Run_stats.cache.Cache.Stats.misses;
  check_bool "nothing uncached" true (Layout.Partition.uncached_regions part = [])

let test_best_split_finds_minimum () =
  let t = Lazy.force mpeg in
  let p, stats = Pipeline.best_split t ~proc:"plus" ~meth:Pipeline.Profile_based in
  let all = List.init 5 (fun q -> cycles_at "plus" q) in
  check_int "best really minimal" (List.fold_left min max_int all)
    stats.Run_stats.cycles;
  check_bool "best split index valid" true (p >= 0 && p <= 4)

let test_run_standard_matches_full_mask_cache () =
  (* the pipeline's "standard" baseline must equal a hand-rolled run with no
     mapping at all *)
  let t = Lazy.force mpeg in
  let a = (Pipeline.run_standard t ~proc:"plus").Run_stats.cycles in
  let system = Pipeline.fresh_system t in
  let b = (Machine.System.run system (Pipeline.trace_of t ~proc:"plus")).Run_stats.cycles in
  check_int "same cycles" a b

let test_packed_trace_of_matches_boxed () =
  let t = Lazy.force mpeg in
  let packed = Pipeline.packed_trace_of t ~proc:"plus" in
  let boxed = Pipeline.trace_of t ~proc:"plus" in
  check_bool "same accesses" true
    (Memtrace.Trace.equal boxed (Memtrace.Packed.to_trace packed))

let test_run_all_rejects_bad_jobs () =
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d rejected" jobs)
        true
        (try
           Experiments.run_all ~jobs
             (Format.make_formatter (fun _ _ _ -> ()) ignore);
           false
         with Invalid_argument msg ->
           msg = "Experiments.run_all: jobs must be >= 1"))
    [ 0; -1; -3 ]

(* --- paper shape assertions (Figure 4 a-c) --- *)

let test_fig4_dequant_scratchpad_optimal () =
  (* monotone non-increasing cycles as scratchpad share grows *)
  let cycles = List.init 5 (fun p -> cycles_at "dequant" p) in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  check_bool "monotone improvement toward scratchpad" true (monotone cycles);
  check_bool "all-scratchpad strictly beats all-cache" true
    (List.nth cycles 4 < List.nth cycles 0)

let test_fig4_plus_scratchpad_optimal () =
  let all_cache = cycles_at "plus" 0 and all_scratch = cycles_at "plus" 4 in
  check_bool "scratchpad wins for plus" true (all_scratch < all_cache)

let test_fig4_idct_needs_cache () =
  (* idct data exceeds the on-chip memory: the all-scratchpad point must be
     the worst, and some data necessarily goes uncached there *)
  let t = Lazy.force mpeg in
  let _, part =
    Pipeline.run_partitioned t ~proc:"idct" ~scratchpad_columns:4
      ~meth:Pipeline.Profile_based
  in
  check_bool "uncached leftovers at p=4" true
    (Layout.Partition.uncached_regions part <> []);
  let all_scratch = cycles_at "idct" 4 in
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "cache point p=%d beats all-scratchpad" p)
        true
        (cycles_at "idct" p < all_scratch))
    [ 0; 1; 2; 3 ]

(* --- Figure 4(d) --- *)

let test_fig4d_dynamic_beats_all_static () =
  let t = Lazy.force mpeg in
  let procs = Workloads.Mpeg.routines in
  let meth = Pipeline.Profile_based in
  let dynamic = (Pipeline.run_dynamic t ~procs ~meth).Run_stats.cycles in
  List.iter
    (fun p ->
      let static =
        (Pipeline.run_static_app t ~procs ~scratchpad_columns:p ~meth)
          .Run_stats.cycles
      in
      check_bool
        (Printf.sprintf "dynamic (%d) beats static p=%d (%d)" dynamic p static)
        true (dynamic < static))
    [ 0; 1; 2; 3; 4 ]

let test_fig4d_dynamic_near_sum_of_optima () =
  let t = Lazy.force mpeg in
  let meth = Pipeline.Profile_based in
  let sum_best =
    List.fold_left
      (fun acc proc ->
        let _, s = Pipeline.best_split ~allow_uncached:false t ~proc ~meth in
        acc + s.Run_stats.cycles)
      0 Workloads.Mpeg.routines
  in
  let dynamic =
    (Pipeline.run_dynamic t ~procs:Workloads.Mpeg.routines ~meth)
      .Run_stats.cycles
  in
  (* transitions cost something, but within 5% of the per-routine optima *)
  check_bool "dynamic within 5% of per-routine optima" true
    (float_of_int dynamic < 1.05 *. float_of_int sum_best)

(* --- Figure 3 --- *)

let test_fig3_costs () =
  let r = Experiments.Fig3.run () in
  check_int "tints: 1 PTE write" 1 r.Experiments.Fig3.tinted_pte_writes;
  check_int "tints: 2 table writes" 2 r.Experiments.Fig3.tinted_table_writes;
  check_int "direct: all PTEs rewritten" r.Experiments.Fig3.pages
    r.Experiments.Fig3.direct_pte_writes;
  check_bool "schemes agree" true r.Experiments.Fig3.masks_agree

(* --- Figure 5 (reduced size to keep the suite fast) --- *)

let test_fig5_mapped_flatter_and_better () =
  let quanta = [ 16; 1024; 65536 ] in
  let series = Experiments.Fig5.run ~quanta ~cache_kbs:[ 16 ] ~input_len:4096 () in
  let find mapped =
    match List.find_opt (fun s -> s.Experiments.Fig5.mapped = mapped) series with
    | Some s -> List.map snd s.Experiments.Fig5.points
    | None -> Alcotest.fail "series missing"
  in
  let std = find false and mapped = find true in
  let spread l = List.fold_left max 0. l -. List.fold_left min infinity l in
  check_bool "mapped flatter" true (spread mapped < spread std);
  (* mapped at the smallest quantum beats standard *)
  check_bool "mapped better at small quantum" true
    (List.nth mapped 0 < List.nth std 0)

(* --- weight methods agree on the big picture --- *)

let test_methods_agree_on_shapes () =
  let t = Lazy.force mpeg in
  List.iter
    (fun meth ->
      let d4 =
        (fst (Pipeline.run_partitioned t ~proc:"dequant" ~scratchpad_columns:4 ~meth
              |> fun (s, p) -> (s, p)))
          .Run_stats.cycles
      in
      let d0 =
        (fst (Pipeline.run_partitioned t ~proc:"dequant" ~scratchpad_columns:0 ~meth))
          .Run_stats.cycles
      in
      check_bool "scratchpad wins for dequant under both methods" true (d4 < d0))
    [ Pipeline.Profile_based; Pipeline.Program_analysis ]

(* --- generality: a second application family --- *)

let test_generality_jpeg () =
  let r = Experiments.Generality.run () in
  check_bool "dynamic beats best static" true
    (r.Experiments.Generality.dynamic_cycles
    < r.Experiments.Generality.best_static_cycles);
  check_bool "dynamic beats standard" true
    (r.Experiments.Generality.dynamic_cycles
    < r.Experiments.Generality.standard_cycles);
  List.iter
    (fun (proc, _, standard, best) ->
      check_bool
        (Printf.sprintf "%s: column layout no worse than standard" proc)
        true (best <= standard))
    r.Experiments.Generality.routines

(* --- CSV export helper --- *)

let test_csv_quoting () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "colcache_csv_test.csv" in
  Colcache.Csv_export.write_rows ~path ~header:[ "a"; "b" ]
    [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string))
    "csv escaping"
    [ "a,b"; "plain,\"with,comma\""; "\"with\"\"quote\",x" ]
    lines

let suites =
  [
    ( "pipeline.mechanics",
      [
        Alcotest.test_case "deterministic traces" `Quick test_trace_of_is_deterministic;
        Alcotest.test_case "summaries cover vars" `Quick test_summaries_cover_all_vars;
        Alcotest.test_case "full scratchpad miss-free" `Quick test_run_partitioned_zero_misses_full_scratchpad;
        Alcotest.test_case "best_split minimal" `Quick test_best_split_finds_minimum;
        Alcotest.test_case "standard = unmapped" `Quick test_run_standard_matches_full_mask_cache;
        Alcotest.test_case "packed trace = boxed trace" `Quick
          test_packed_trace_of_matches_boxed;
        Alcotest.test_case "run_all rejects bad jobs" `Quick
          test_run_all_rejects_bad_jobs;
      ] );
    ( "pipeline.paper_shapes",
      [
        Alcotest.test_case "fig4a dequant" `Quick test_fig4_dequant_scratchpad_optimal;
        Alcotest.test_case "fig4b plus" `Quick test_fig4_plus_scratchpad_optimal;
        Alcotest.test_case "fig4c idct" `Quick test_fig4_idct_needs_cache;
        Alcotest.test_case "fig4d dynamic wins" `Quick test_fig4d_dynamic_beats_all_static;
        Alcotest.test_case "fig4d near optima" `Quick test_fig4d_dynamic_near_sum_of_optima;
        Alcotest.test_case "fig3 costs" `Quick test_fig3_costs;
        Alcotest.test_case "fig5 shape" `Slow test_fig5_mapped_flatter_and_better;
        Alcotest.test_case "methods agree" `Quick test_methods_agree_on_shapes;
        Alcotest.test_case "generality: jpeg" `Quick test_generality_jpeg;
        Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
      ] );
  ]
