(* Tests for the machine model: timing, scratchpad regions, column pinning
   and CPI accounting. *)

module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Bitmask = Cache.Bitmask
module Sassoc = Cache.Sassoc
module System = Machine.System
module Timing = Machine.Timing
module Run_stats = Machine.Run_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* 2KB cache, 4 columns, 16B lines (the paper's Section 4.1 geometry). *)
let paper_cache = Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ()

let make_system ?(timing = Timing.default) () =
  System.create (System.config ~timing paper_cache)

let test_hit_cycle_accounting () =
  let sys = make_system () in
  (* first access: TLB miss + cache miss; second: both hit *)
  let c1 = System.access sys (Access.make 0) in
  let c2 = System.access sys (Access.make 0) in
  let t = Timing.default in
  check_int "miss cost" (t.Timing.tlb_miss_penalty + t.Timing.hit_cycles + t.Timing.miss_penalty) c1;
  check_int "hit cost" t.Timing.hit_cycles c2

let test_gap_counts_instructions () =
  let sys = make_system () in
  let trace = Trace.of_list [ Access.make ~gap:4 0; Access.make ~gap:2 0 ] in
  let r = System.run sys trace in
  check_int "instructions" 8 r.Run_stats.instructions;
  (* gaps cost one cycle per instruction *)
  check_bool "cycles include gaps" true (r.Run_stats.cycles >= 6)

let test_cpi_all_hits_is_one () =
  let sys = make_system () in
  (* warm one line and the TLB *)
  ignore (System.access sys (Access.make 0));
  let trace = Trace.of_list (List.init 100 (fun _ -> Access.make 0)) in
  let r = System.run sys trace in
  check_bool "CPI = 1 for pure hits"
    true
    (abs_float (Run_stats.cpi r -. 1.0) < 1e-9)

let test_scratchpad_region () =
  let sys = make_system () in
  System.add_scratchpad sys ~base:0x8000 ~size:512;
  check_bool "inside" true (System.in_scratchpad sys 0x8100);
  check_bool "outside" false (System.in_scratchpad sys 0x7FFF);
  check_int "bytes" 512 (System.scratchpad_bytes sys);
  let r = System.run sys (Trace.of_list [ Access.make 0x8000; Access.make 0x8000 ]) in
  check_int "both scratchpad" 2 r.Run_stats.scratchpad_accesses;
  check_int "no cache traffic" 0 r.Run_stats.cache.Cache.Stats.accesses;
  (* scratchpad accesses always cost scratchpad_cycles: fully predictable *)
  check_int "cycles" (2 * Timing.default.Timing.scratchpad_cycles) r.Run_stats.cycles

let test_scratchpad_overlap_rejected () =
  let sys = make_system () in
  System.add_scratchpad sys ~base:0 ~size:256;
  check_bool "overlap raises" true
    (try System.add_scratchpad sys ~base:128 ~size:256; false
     with Invalid_argument _ -> true)

let test_pin_region_behaves_like_scratchpad () =
  let sys = make_system () in
  let colsize = Sassoc.column_size_bytes paper_cache in
  System.pin_region sys ~base:0 ~size:colsize ~mask:(Bitmask.singleton 0)
    ~tint:(Vm.Tint.make "pinned");
  (* route all other traffic away from column 0 *)
  Vm.Mapping.remap_tint (System.mapping sys) Vm.Tint.default
    (Bitmask.of_list [ 1; 2; 3 ]);
  (* heavy interference elsewhere *)
  let noise =
    Memtrace.Synthetic.uniform_random ~seed:9 ~base:0x100000 ~span:65536
      ~count:5000 ()
  in
  ignore (System.run sys noise);
  (* the pinned region never misses *)
  let pinned_trace =
    Memtrace.Synthetic.sequential ~base:0 ~count:(colsize / 4) ~stride:4 ()
  in
  let r = System.run sys pinned_trace in
  check_int "zero misses in pinned region" 0 r.Run_stats.cache.Cache.Stats.misses

let test_pin_region_too_big_rejected () =
  let sys = make_system () in
  let colsize = Sassoc.column_size_bytes paper_cache in
  check_bool "oversized pin raises" true
    (try
       System.pin_region sys ~base:0 ~size:(colsize + 1)
         ~mask:(Bitmask.singleton 0) ~tint:(Vm.Tint.make "x");
       false
     with Invalid_argument _ -> true)

let test_run_returns_delta () =
  let sys = make_system () in
  let t = Trace.of_list [ Access.make 0 ] in
  ignore (System.run sys t);
  let r2 = System.run sys t in
  check_int "second run only one access" 1 r2.Run_stats.memory_accesses;
  check_int "second run no misses" 0 r2.Run_stats.cache.Cache.Stats.misses;
  let total = System.total sys in
  check_int "total accumulates" 2 total.Run_stats.memory_accesses

let test_writeback_penalty_charged () =
  let t0 = Timing.default in
  let sys = make_system () in
  (* dirty a line in set 0, then evict it with 4 reads to the same set *)
  ignore (System.access sys (Access.write 0));
  let evicting =
    (* set 0 recurs every sets*line = 32*16 = 512 bytes *)
    List.init 4 (fun i -> Access.make ((i + 1) * 512))
  in
  let r = System.run sys (Trace.of_list evicting) in
  check_int "one writeback" 1 r.Run_stats.cache.Cache.Stats.writebacks;
  let expected_min =
    (4 * (t0.Timing.hit_cycles + t0.Timing.miss_penalty)) + t0.Timing.writeback_penalty
  in
  check_bool "cycles include writeback penalty" true (r.Run_stats.cycles >= expected_min)

let test_partitioned_job_insensitive_to_interference () =
  (* The multitasking claim (Section 4.2) in miniature: job A's hit rate with
     its own columns is unaffected by job B's footprint. *)
  let run_with_interference mapped =
    let sys = make_system () in
    let mapping = System.mapping sys in
    if mapped then begin
      ignore
        (Vm.Mapping.retint_region mapping ~base:0 ~size:1024 (Vm.Tint.make "jobA"));
      Vm.Mapping.remap_tint mapping (Vm.Tint.make "jobA") (Bitmask.of_list [ 0; 1 ]);
      Vm.Mapping.remap_tint mapping Vm.Tint.default (Bitmask.of_list [ 2; 3 ])
    end;
    let job_a i = Access.make ~var:"A" (i * 16 mod 1024) in
    let job_b i = Access.make ~var:"B" (0x40000 + (i * 16)) in
    let misses_a = ref 0 in
    for i = 0 to 5000 do
      (match System.access sys (job_a i), () with _ -> ());
      ignore (System.access sys (job_b (4 * i)));
      ignore (System.access sys (job_b ((4 * i) + 1)));
      ignore (System.access sys (job_b ((4 * i) + 2)));
      ignore (System.access sys (job_b ((4 * i) + 3)))
    done;
    (* measure A's steady-state misses over a second pass *)
    let before = (System.total sys).Run_stats.cache.Cache.Stats.misses in
    for i = 0 to 1000 do
      ignore (System.access sys (job_a i));
      misses_a :=
        (System.total sys).Run_stats.cache.Cache.Stats.misses - before
    done;
    !misses_a
  in
  let shared = run_with_interference false in
  let mapped = run_with_interference true in
  check_bool
    (Printf.sprintf "mapped (%d misses) < shared (%d misses)" mapped shared)
    true (mapped < shared)

(* --- L2 --- *)

let l2_system () =
  let l2 = Sassoc.config ~line_size:16 ~size_bytes:16384 ~ways:4 () in
  System.create (System.config ~l2 paper_cache)

let test_l2_absorbs_l1_misses () =
  let t0 = Timing.default in
  let sys = l2_system () in
  (* fill line 0, evict it from L1 by walking its set, then return *)
  ignore (System.access sys (Access.make 0));
  for k = 1 to 4 do
    ignore (System.access sys (Access.make (k * 512)))
  done;
  let cost = System.access sys (Access.make 0) in
  check_int "L1 miss served from L2"
    (t0.Timing.hit_cycles + t0.Timing.l2_hit_cycles)
    cost;
  let total = System.total sys in
  check_bool "l2 hit counted" true (total.Run_stats.l2_hits >= 1)

let test_l2_miss_costs_memory () =
  let t0 = Timing.default in
  let sys = l2_system () in
  let cost = System.access sys (Access.make 0) in
  check_int "cold miss misses both levels"
    (t0.Timing.tlb_miss_penalty + t0.Timing.hit_cycles + t0.Timing.miss_penalty)
    cost;
  check_int "l2 miss counted" 1 (System.total sys).Run_stats.l2_misses

let test_no_l2_no_counters () =
  let sys = make_system () in
  ignore (System.access sys (Access.make 0));
  check_int "no l2 hits" 0 (System.total sys).Run_stats.l2_hits;
  check_int "no l2 misses" 0 (System.total sys).Run_stats.l2_misses

let test_l2_speeds_up_thrashing_workload () =
  (* a working set larger than L1 but within L2 *)
  let trace =
    Memtrace.Synthetic.repeat_walk ~base:0 ~len:256 ~stride:16 ~passes:10 ()
  in
  let without = System.run (make_system ()) trace in
  let with_l2 = System.run (l2_system ()) trace in
  check_bool "L2 saves cycles" true
    (with_l2.Run_stats.cycles < without.Run_stats.cycles)

(* --- stream prefetch --- *)

let streaming_setup () =
  let sys = make_system () in
  let mapping = System.mapping sys in
  let stream = Vm.Tint.make "stream" in
  (* a 1 KB streaming region in columns {0,1}; everything else in {2,3} *)
  ignore (Vm.Mapping.retint_region mapping ~base:0 ~size:1024 stream);
  Vm.Mapping.remap_tint mapping stream (Bitmask.of_list [ 0; 1 ]);
  Vm.Mapping.remap_tint mapping Vm.Tint.default (Bitmask.of_list [ 2; 3 ]);
  (sys, stream)

let test_prefetch_hides_sequential_misses () =
  let run ~streaming =
    let sys, stream = streaming_setup () in
    if streaming then System.set_streaming sys stream;
    let walk = Memtrace.Synthetic.sequential ~base:0 ~count:256 ~stride:4 () in
    let r = System.run sys walk in
    (r.Run_stats.cache.Cache.Stats.misses, r.Run_stats.prefetches, r.Run_stats.cycles)
  in
  let m0, p0, c0 = run ~streaming:false in
  let m1, p1, c1 = run ~streaming:true in
  check_int "no prefetches without marking" 0 p0;
  check_bool "prefetches issued" true (p1 > 50);
  (* 1 KB / 16 B = 64 lines: all cold without prefetch, almost none with *)
  check_int "misses without prefetch" 64 m0;
  check_bool (Printf.sprintf "misses drop (%d -> %d)" m0 m1) true (m1 <= 8);
  check_bool "cycles drop" true (c1 < c0)

let test_prefetch_stays_in_stream_columns () =
  let sys, stream = streaming_setup () in
  System.set_streaming sys stream;
  let walk = Memtrace.Synthetic.sequential ~base:0 ~count:256 ~stride:4 () in
  ignore (System.run sys walk);
  let cache = System.cache sys in
  check_int "column 2 untouched" 0 (List.length (Sassoc.lines_in_column cache 2));
  check_int "column 3 untouched" 0 (List.length (Sassoc.lines_in_column cache 3))

let test_prefetch_stops_at_region_boundary () =
  let sys, stream = streaming_setup () in
  System.set_streaming sys stream;
  (* touch the very last line of the streaming region: the next line lies in
     a different-mask page, so no prefetch may be issued for it *)
  let r =
    System.run sys (Trace.of_list [ Access.make (1024 - 16) ])
  in
  check_int "no cross-mask prefetch" 0 r.Run_stats.prefetches;
  check_bool "next region line not cached" true
    (Sassoc.probe (System.cache sys) 1024 = None)

let test_clear_streaming () =
  let sys, stream = streaming_setup () in
  System.set_streaming sys stream;
  check_bool "marked" true (System.is_streaming sys stream);
  System.clear_streaming sys stream;
  check_bool "cleared" false (System.is_streaming sys stream);
  let r = System.run sys (Trace.of_list [ Access.make 0 ]) in
  check_int "no prefetch after clear" 0 r.Run_stats.prefetches

(* --- Run_stats arithmetic --- *)

let test_run_stats_add_cpi () =
  let a =
    {
      (Run_stats.zero ~ways:4) with
      Run_stats.instructions = 10;
      cycles = 25;
      memory_accesses = 9;
      scratchpad_accesses = 4;
      tlb_hits = 7;
      tlb_misses = 1;
      l2_hits = 3;
      l2_misses = 2;
      prefetches = 5;
    }
  in
  let b =
    { a with Run_stats.instructions = 30; cycles = 35; l2_hits = 1; prefetches = 2 }
  in
  let s = Run_stats.add a b in
  check_int "instructions" 40 s.Run_stats.instructions;
  check_int "cycles" 60 s.Run_stats.cycles;
  check_int "memory accesses" 18 s.Run_stats.memory_accesses;
  check_int "scratchpad accesses" 8 s.Run_stats.scratchpad_accesses;
  check_int "tlb hits" 14 s.Run_stats.tlb_hits;
  check_int "tlb misses" 2 s.Run_stats.tlb_misses;
  check_int "l2 hits" 4 s.Run_stats.l2_hits;
  check_int "l2 misses" 4 s.Run_stats.l2_misses;
  check_int "prefetches" 7 s.Run_stats.prefetches;
  check_bool "cpi is cycles/instructions" true
    (abs_float (Run_stats.cpi s -. 1.5) < 1e-9);
  check_bool "cpi of zero is zero" true
    (Run_stats.cpi (Run_stats.zero ~ways:4) = 0.)

let test_scratchpad_overlap_variants () =
  let sys = make_system () in
  System.add_scratchpad sys ~base:0x1000 ~size:256;
  (* back-to-back regions do not overlap *)
  System.add_scratchpad sys ~base:0x1100 ~size:256;
  List.iter
    (fun (base, size) ->
      check_bool (Printf.sprintf "overlap [0x%x,+%d) rejected" base size) true
        (try
           System.add_scratchpad sys ~base ~size;
           false
         with Invalid_argument _ -> true))
    [ (0x1000, 256); (0x10FF, 2); (0xF00, 0x200); (0x1000, 1); (0x11FF, 1) ];
  check_int "rejected regions don't count" 512 (System.scratchpad_bytes sys)

(* --- batched replay vs the scalar reference ---
   [System.run_trace] promises byte-identical [Run_stats]; pin it across
   every machine feature the memoized fast path must respect. *)

let check_run_stats name (a : Run_stats.t) (b : Run_stats.t) =
  let f field proj = check_int (name ^ " " ^ field) (proj a) (proj b) in
  f "instructions" (fun r -> r.Run_stats.instructions);
  f "cycles" (fun r -> r.Run_stats.cycles);
  f "memory accesses" (fun r -> r.Run_stats.memory_accesses);
  f "scratchpad accesses" (fun r -> r.Run_stats.scratchpad_accesses);
  f "tlb hits" (fun r -> r.Run_stats.tlb_hits);
  f "tlb misses" (fun r -> r.Run_stats.tlb_misses);
  f "l2 hits" (fun r -> r.Run_stats.l2_hits);
  f "l2 misses" (fun r -> r.Run_stats.l2_misses);
  f "prefetches" (fun r -> r.Run_stats.prefetches);
  let c field proj =
    check_int
      (name ^ " cache " ^ field)
      (proj a.Run_stats.cache) (proj b.Run_stats.cache)
  in
  c "accesses" (fun (s : Cache.Stats.t) -> s.Cache.Stats.accesses);
  c "hits" (fun s -> s.Cache.Stats.hits);
  c "misses" (fun s -> s.Cache.Stats.misses);
  c "evictions" (fun s -> s.Cache.Stats.evictions);
  c "writebacks" (fun s -> s.Cache.Stats.writebacks);
  check_bool
    (name ^ " cache fills-per-way")
    true
    (a.Run_stats.cache.Cache.Stats.fills_per_way
    = b.Run_stats.cache.Cache.Stats.fills_per_way)

let mixed_trace =
  (* same-page runs, page-crossing writes, varying gaps *)
  Trace.of_list
    (List.concat_map
       (fun i ->
         [
           Access.make ~gap:(i mod 5) (i * 4 mod 2048);
           Access.make ~kind:Access.Write ~gap:1 (0x4000 + (i * 64 mod 4096));
           Access.make ~var:"hot" (i * 4 mod 2048);
         ])
       (List.init 400 Fun.id))

let both_drivers mk trace =
  let scalar = mk () in
  let batched = mk () in
  let rs = System.run scalar trace in
  let rb = System.run_trace batched trace in
  (rs, rb, scalar, batched)

let test_batched_matches_scalar_plain () =
  let rs, rb, s, b = both_drivers make_system mixed_trace in
  check_run_stats "plain delta" rs rb;
  check_run_stats "plain total" (System.total s) (System.total b)

let test_batched_matches_scalar_streaming () =
  let mk () =
    let sys, stream = streaming_setup () in
    System.set_streaming sys stream;
    sys
  in
  let walk = Memtrace.Synthetic.sequential ~base:0 ~count:256 ~stride:4 () in
  let rs, rb, _, _ = both_drivers mk walk in
  check_bool "prefetches actually happened" true (rs.Run_stats.prefetches > 0);
  check_run_stats "streaming" rs rb

let test_batched_matches_scalar_regions () =
  let mk () =
    let sys = make_system () in
    System.add_scratchpad sys ~base:0x8000 ~size:512;
    System.add_uncached sys ~base:0x9000 ~size:512;
    sys
  in
  let trace =
    Trace.of_list
      (List.concat_map
         (fun i ->
           [
             Access.make ~gap:(i mod 3) (i * 8 mod 1024);
             Access.make ~kind:Access.Write (0x8000 + (i * 4 mod 512));
             Access.make (0x9000 + (i * 16 mod 512));
           ])
         (List.init 200 Fun.id))
  in
  let rs, rb, _, _ = both_drivers mk trace in
  check_bool "scratchpad actually hit" true
    (rs.Run_stats.scratchpad_accesses > 0);
  check_run_stats "regions" rs rb

let test_batched_matches_scalar_l2 () =
  let thrash =
    (* 4 KB region: overflows the 2 KB L1, fits the 16 KB L2 *)
    Memtrace.Synthetic.repeat_walk ~base:0 ~len:256 ~stride:16 ~passes:8 ()
  in
  let rs, rb, _, _ = both_drivers l2_system thrash in
  check_bool "L2 actually hit" true (rs.Run_stats.l2_hits > 0);
  check_run_stats "l2" rs rb

let test_batched_matches_scalar_frame_map () =
  let mk () =
    let sys = make_system () in
    let fm = Vm.Frame_map.create ~page_size:256 in
    (* swap two distant pages so virtual and physical indices disagree *)
    Vm.Frame_map.map_page fm ~page:0 ~frame:16;
    Vm.Frame_map.map_page fm ~page:16 ~frame:0;
    System.set_frame_map sys fm;
    sys
  in
  let trace =
    Trace.of_list
      (List.concat_map
         (fun i -> [ Access.make (i * 4 mod 256); Access.make (0x1000 + (i * 4 mod 256)) ])
         (List.init 150 Fun.id))
  in
  let rs, rb, _, _ = both_drivers mk trace in
  check_run_stats "frame map" rs rb

let test_batched_matches_scalar_retint () =
  (* reconfigure between replays: memoized state must not leak across *)
  let scalar = make_system () in
  let batched = make_system () in
  let hot = Vm.Tint.make "hot" in
  let reconfigure sys =
    ignore (Vm.Mapping.retint_region (System.mapping sys) ~base:0 ~size:1024 hot);
    Vm.Mapping.remap_tint (System.mapping sys) hot (Bitmask.of_list [ 0; 1 ]);
    Vm.Mapping.remap_tint (System.mapping sys) Vm.Tint.default
      (Bitmask.of_list [ 2; 3 ])
  in
  let t1 = Memtrace.Synthetic.sequential ~base:0 ~count:256 ~stride:8 () in
  let t2 = Memtrace.Synthetic.uniform_random ~seed:5 ~base:0 ~span:8192 ~count:800 () in
  check_run_stats "before retint" (System.run scalar t1)
    (System.run_trace batched t1);
  reconfigure scalar;
  reconfigure batched;
  check_run_stats "after retint" (System.run scalar t2)
    (System.run_trace batched t2);
  System.flush_tlb scalar;
  System.flush_tlb batched;
  System.flush_cache scalar;
  System.flush_cache batched;
  check_run_stats "after flushes" (System.run scalar t1)
    (System.run_trace batched t1);
  check_run_stats "grand total" (System.total scalar) (System.total batched)

let suites =
  [
    ( "machine.system",
      [
        Alcotest.test_case "hit cycle accounting" `Quick test_hit_cycle_accounting;
        Alcotest.test_case "gap instructions" `Quick test_gap_counts_instructions;
        Alcotest.test_case "CPI of pure hits" `Quick test_cpi_all_hits_is_one;
        Alcotest.test_case "scratchpad region" `Quick test_scratchpad_region;
        Alcotest.test_case "scratchpad overlap" `Quick test_scratchpad_overlap_rejected;
        Alcotest.test_case "pin_region = scratchpad" `Quick test_pin_region_behaves_like_scratchpad;
        Alcotest.test_case "oversized pin rejected" `Quick test_pin_region_too_big_rejected;
        Alcotest.test_case "run returns delta" `Quick test_run_returns_delta;
        Alcotest.test_case "writeback penalty" `Quick test_writeback_penalty_charged;
        Alcotest.test_case "partition isolation" `Quick test_partitioned_job_insensitive_to_interference;
      ] );
    ( "machine.prefetch",
      [
        Alcotest.test_case "hides sequential misses" `Quick test_prefetch_hides_sequential_misses;
        Alcotest.test_case "stays in stream columns" `Quick test_prefetch_stays_in_stream_columns;
        Alcotest.test_case "stops at region boundary" `Quick test_prefetch_stops_at_region_boundary;
        Alcotest.test_case "clear" `Quick test_clear_streaming;
      ] );
    ( "machine.l2",
      [
        Alcotest.test_case "L2 absorbs L1 misses" `Quick test_l2_absorbs_l1_misses;
        Alcotest.test_case "L2 miss costs memory" `Quick test_l2_miss_costs_memory;
        Alcotest.test_case "no L2 no counters" `Quick test_no_l2_no_counters;
        Alcotest.test_case "L2 speeds up thrash" `Quick test_l2_speeds_up_thrashing_workload;
      ] );
    ( "machine.run_stats",
      [
        Alcotest.test_case "add and cpi" `Quick test_run_stats_add_cpi;
        Alcotest.test_case "scratchpad overlap variants" `Quick
          test_scratchpad_overlap_variants;
      ] );
    ( "machine.batched_replay",
      [
        Alcotest.test_case "plain" `Quick test_batched_matches_scalar_plain;
        Alcotest.test_case "streaming prefetch" `Quick
          test_batched_matches_scalar_streaming;
        Alcotest.test_case "scratchpad + uncached" `Quick
          test_batched_matches_scalar_regions;
        Alcotest.test_case "L2" `Quick test_batched_matches_scalar_l2;
        Alcotest.test_case "frame map" `Quick
          test_batched_matches_scalar_frame_map;
        Alcotest.test_case "retint between runs" `Quick
          test_batched_matches_scalar_retint;
      ] );
  ]
