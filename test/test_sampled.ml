(* Tests for the SHARDS-style sampled stack-distance engine and the sampled
   evaluation paths built on it: exactness at rate 1.0, determinism,
   threshold monotonicity, the fixed-budget adaptation, and agreement of the
   sampled sweep/pipeline/allocator wiring with the exact paths. *)

module Access = Memtrace.Access
module Stack_dist = Cache.Stack_dist
module Sampled = Cache.Stack_dist.Sampled
module Pipeline = Colcache.Pipeline
module Sweep = Colcache.Sweep
module Sassoc = Cache.Sassoc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

(* Feed the same deterministic stream to any number of engines. *)
let replay ~accesses ~addr_space seed feed =
  let rand = lcg seed in
  for _ = 1 to accesses do
    let addr = rand addr_space in
    let kind = if rand 4 = 0 then Access.Write else Access.Read in
    feed ~kind addr
  done

let float_array_equal a b =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

(* --- exactness at rate 1.0 --- *)

let test_rate_one_is_exact () =
  let exact = Stack_dist.create ~line_size:16 ~sets:32 ~max_ways:8 () in
  let sampled =
    Sampled.create ~seed:7 ~rate:1.0 ~line_size:16 ~sets:32 ~max_ways:8 ()
  in
  replay ~accesses:5000 ~addr_space:65536 42 (fun ~kind addr ->
      Stack_dist.access exact ~kind addr;
      Sampled.access sampled ~kind addr);
  check_int "all sets selected" 32 (Sampled.selected_sets sampled);
  check_bool "scale is 1" true (Sampled.scale sampled = 1.0);
  check_bool "effective rate is 1" true (Sampled.effective_rate sampled = 1.0);
  check_int "every access sampled" (Sampled.accesses sampled)
    (Sampled.sampled_accesses sampled);
  check_bool "mrc_est = exact mrc" true
    (float_array_equal (Sampled.mrc_est sampled) (Stack_dist.mrc exact));
  Array.iteri
    (fun i est ->
      check_bool
        (Printf.sprintf "miss_curve_est.(%d) exact" i)
        true
        (est = float_of_int (Stack_dist.miss_curve exact).(i)))
    (Sampled.miss_curve_est sampled);
  for ways = 1 to 8 do
    check_bool "misses_est exact" true
      (Sampled.misses_est sampled ~ways
      = float_of_int (Stack_dist.misses exact ~ways));
    check_bool "evictions_est exact" true
      (Sampled.evictions_est sampled ~ways
      = float_of_int (Stack_dist.evictions exact ~ways));
    check_bool "writebacks_est exact" true
      (Sampled.writebacks_est sampled ~ways
      = float_of_int (Stack_dist.writebacks exact ~ways))
  done

(* --- determinism --- *)

let test_determinism () =
  let make () =
    Sampled.create ~seed:99 ~rate:0.3 ~line_size:16 ~sets:64 ~max_ways:4 ()
  in
  let a = make () and b = make () in
  replay ~accesses:4000 ~addr_space:32768 5 (fun ~kind addr ->
      Sampled.access a ~kind addr;
      Sampled.access b ~kind addr);
  check_int "same selection" (Sampled.selected_sets a) (Sampled.selected_sets b);
  check_bool "identical raw curves" true
    (Sampled.raw_miss_curve a = Sampled.raw_miss_curve b);
  check_bool "identical estimates" true
    (float_array_equal (Sampled.mrc_est a) (Sampled.mrc_est b));
  (* a different seed picks a different subpopulation of sets *)
  let c =
    Sampled.create ~seed:100 ~rate:0.3 ~line_size:16 ~sets:64 ~max_ways:4 ()
  in
  let sel engine =
    List.filter (fun s -> Sampled.would_sample engine (s * 16)) (List.init 64 Fun.id)
  in
  check_bool "seed changes the sample" true (sel a <> sel c)

(* --- threshold monotonicity --- *)

(* Selection is a prefix of the sets ordered by (hash, index), so the sets
   selected at a lower rate must be a subset of those at any higher rate
   under the same seed. [would_sample] exposes the selection per address;
   set s owns address s * line_size. *)
let selected_indices engine ~sets ~line_size =
  List.filter
    (fun s -> Sampled.would_sample engine (s * line_size))
    (List.init sets Fun.id)

let qcheck_threshold_monotone =
  QCheck.Test.make ~name:"lower rate samples a subset of higher rate"
    ~count:100
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 1000))
    (fun (seed, r1, r2) ->
      let lo = 0.01 +. (float_of_int (min r1 r2) /. 1000. *. 0.98) in
      let hi = 0.01 +. (float_of_int (max r1 r2) /. 1000. *. 0.98) in
      let make rate =
        Sampled.create ~seed ~rate ~line_size:16 ~sets:128 ~max_ways:2 ()
      in
      let at_lo = selected_indices (make lo) ~sets:128 ~line_size:16 in
      let at_hi = selected_indices (make hi) ~sets:128 ~line_size:16 in
      List.for_all (fun s -> List.mem s at_hi) at_lo)

(* --- floors and budgets --- *)

let test_min_sets_floor () =
  let s =
    Sampled.create ~seed:3 ~min_sets:4 ~rate:0.001 ~line_size:16 ~sets:32
      ~max_ways:4 ()
  in
  check_bool "floor holds" true (Sampled.selected_sets s >= 4);
  check_bool "effective rate reported honestly" true
    (Sampled.effective_rate s
    = float_of_int (Sampled.selected_sets s) /. 32.)

let test_budget_eviction () =
  let sets = 64 in
  let s =
    Sampled.create ~seed:1 ~min_sets:2 ~budget:64 ~rate:0.5 ~line_size:16
      ~sets ~max_ways:4 ()
  in
  let initial = Sampled.selected_sets s in
  (* a huge scan: distinct lines accumulate until the budget forces set
     evictions, which lower the threshold below the nominal rate *)
  for i = 0 to 20000 do
    Sampled.access s ~kind:Access.Read (i * 16)
  done;
  check_bool "budget forced evictions" true (Sampled.set_evictions s > 0);
  check_bool "threshold lowered" true (Sampled.threshold s < Sampled.rate s);
  check_bool "selection shrank" true (Sampled.selected_sets s < initial);
  (* this scan has far more distinct lines than the budget, so adaptation
     must bottom out exactly at the min_sets floor — never below it *)
  check_int "evicted down to the floor, not through it" 2
    (Sampled.selected_sets s);
  check_bool "budget respected until the floor" true
    (Sampled.distinct_sampled_lines s <= 64
    || Sampled.selected_sets s = 2);
  let mrc = Sampled.mrc_est s in
  check_bool "mrc_est still anchored at 1" true (mrc.(0) = 1.0);
  Array.iter
    (fun r -> check_bool "mrc_est in [0,1]" true (r >= 0. && r <= 1.))
    mrc

(* --- estimate accuracy on a skewed trace --- *)

let test_sampled_accuracy () =
  let exact = Stack_dist.create ~line_size:16 ~sets:64 ~max_ways:8 () in
  let sampled =
    Sampled.create ~seed:0x5eed ~min_sets:4 ~rate:0.25 ~line_size:16 ~sets:64
      ~max_ways:8 ()
  in
  (* Zipf-flavoured reuse: square a uniform rank so low ranks dominate. *)
  let rand = lcg 77 in
  for _ = 1 to 30000 do
    let r = rand 1000 in
    let addr = r * r mod 65536 * 16 in
    let kind = if rand 4 = 0 then Access.Write else Access.Read in
    Stack_dist.access exact ~kind addr;
    Sampled.access sampled ~kind addr
  done;
  let em = Stack_dist.mrc exact and sm = Sampled.mrc_est sampled in
  let err = ref 0. in
  for w = 1 to 8 do
    err := !err +. abs_float (em.(w) -. sm.(w))
  done;
  let mean = !err /. 8. in
  check_bool
    (Printf.sprintf "mean abs miss-ratio error %.4f within 0.08" mean)
    true (mean <= 0.08)

(* --- sampled sweep evaluators --- *)

let mpeg_pipeline =
  lazy
    (Pipeline.make ~init:Workloads.Mpeg.init
       ~cache:(Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       Workloads.Mpeg.program)

let test_standard_sampled_rate_one () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let packed = Pipeline.packed_trace_of t ~proc in
      let exact =
        match
          Sweep.standard ~cache:t.Pipeline.cache ~timing:Machine.Timing.default
            ~page_size:t.Pipeline.page_size ~tlb_entries:t.Pipeline.tlb_entries
            [ packed ]
        with
        | Some s -> s.Machine.Run_stats.cycles
        | None -> Alcotest.fail "standard sweep infeasible"
      in
      match
        Sweep.standard_sampled ~rate:1.0 ~cache:t.Pipeline.cache
          ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
          ~tlb_entries:t.Pipeline.tlb_entries [ packed ]
      with
      | Some est ->
          check_bool (proc ^ ": rate 1.0 equals exact cycles") true
            (est = float_of_int exact)
      | None -> Alcotest.fail (proc ^ ": sampled sweep infeasible"))
    Workloads.Mpeg.routines

let copy_in_of t ~proc =
  let reads = Hashtbl.create 16 and writes = Hashtbl.create 16 in
  Memtrace.Trace.iter
    (fun a ->
      match a.Access.var with
      | None -> ()
      | Some v -> (
          match a.Access.kind with
          | Access.Read | Access.Ifetch -> Hashtbl.replace reads v ()
          | Access.Write -> Hashtbl.replace writes v ()))
    (Pipeline.trace_of t ~proc);
  Hashtbl.fold
    (fun v () acc -> if Hashtbl.mem writes v then v :: acc else acc)
    reads []

let test_partitioned_sampled_none_agreement () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let copy_in = copy_in_of t ~proc in
      let packed = Pipeline.packed_trace_of t ~proc in
      for scratchpad_columns = 0 to 3 do
        let part =
          Pipeline.partition t ~proc ~scratchpad_columns
            ~meth:Pipeline.Profile_based
        in
        let exact =
          Sweep.partitioned ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries ~part ~copy_in [ packed ]
        in
        let sampled =
          Sweep.partitioned_sampled ~rate:1.0 ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries ~part ~copy_in [ packed ]
        in
        let label =
          Printf.sprintf "%s/scratch=%d" proc scratchpad_columns
        in
        match (exact, sampled) with
        | None, None -> ()
        | Some e, Some s ->
            check_bool (label ^ ": rate 1.0 equals exact cycles") true
              (s = float_of_int e.Machine.Run_stats.cycles)
        | Some _, None -> Alcotest.fail (label ^ ": sampled None, exact Some")
        | None, Some _ -> Alcotest.fail (label ^ ": sampled Some, exact None")
      done)
    Workloads.Mpeg.routines

let test_best_split_sampled () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let exact_cols, exact_stats =
        Pipeline.best_split t ~proc ~meth:Pipeline.Profile_based
      in
      (* rate 1.0: the sampled ranking sees exactly the exact cycle counts,
         so the choice — and therefore the exact replay it reports — must
         be identical *)
      let s_cols, s_stats =
        Pipeline.best_split ~sample_rate:1.0 t ~proc
          ~meth:Pipeline.Profile_based
      in
      check_int (proc ^ ": same winning split") exact_cols s_cols;
      check_int (proc ^ ": same reported cycles")
        exact_stats.Machine.Run_stats.cycles s_stats.Machine.Run_stats.cycles;
      (* a real sampling rate may pick a different split, but the reported
         stats must still be an exact replay of whatever it picked *)
      let r_cols, r_stats =
        Pipeline.best_split ~sample_rate:0.5 t ~proc
          ~meth:Pipeline.Profile_based
      in
      let part =
        Pipeline.partition t ~proc ~scratchpad_columns:r_cols
          ~meth:Pipeline.Profile_based
      in
      let replay =
        let system = Pipeline.fresh_system t in
        Layout.Partition.apply ~copy_in:(copy_in_of t ~proc) part system;
        Machine.System.run_packed system (Pipeline.packed_trace_of t ~proc)
      in
      check_int
        (proc ^ ": sampled choice reported exactly")
        replay.Machine.Run_stats.cycles r_stats.Machine.Run_stats.cycles)
    Workloads.Mpeg.routines

(* --- float allocator generalization --- *)

let test_allocate_float_matches_int () =
  let curves =
    [
      ("a", [| 100; 50; 10; 5; 5 |]);
      ("b", [| 80; 40; 35; 30; 30 |]);
      ("c", [| 60; 60; 60; 60; 60 |]);
    ]
  in
  let as_float =
    List.map (fun (n, c) -> (n, Array.map float_of_int c)) curves
  in
  Alcotest.(check (list (pair string int)))
    "float allocator = int allocator on integral curves"
    (Layout.Mrc_alloc.allocate ~columns:5 curves)
    (Layout.Mrc_alloc.allocate_float ~columns:5 as_float);
  let alloc = Layout.Mrc_alloc.allocate ~columns:5 curves in
  check_bool "predicted misses agree" true
    (Layout.Mrc_alloc.predicted_misses_float as_float alloc
    = float_of_int (Layout.Mrc_alloc.predicted_misses curves alloc))

let test_allocate_float_on_sampled_curves () =
  (* End-to-end: per-tag sampled curves drive the allocator without the
     int quantization the exact path uses. *)
  let curves =
    [ ("x", [| 90.5; 30.25; 10.125; 10.125 |]); ("y", [| 70.; 65.; 20.; 19. |]) ]
  in
  let alloc = Layout.Mrc_alloc.allocate_float ~columns:3 curves in
  check_int "spends every column" 3
    (List.fold_left (fun acc (_, c) -> acc + c) 0 alloc);
  check_bool "every name allocated" true
    (List.for_all (fun (_, c) -> c >= 1) alloc)

let suites =
  [
    ( "cache.stack_dist.sampled",
      [
        Alcotest.test_case "rate 1.0 is exact" `Quick test_rate_one_is_exact;
        Alcotest.test_case "deterministic" `Quick test_determinism;
        QCheck_alcotest.to_alcotest qcheck_threshold_monotone;
        Alcotest.test_case "min_sets floor" `Quick test_min_sets_floor;
        Alcotest.test_case "budget eviction adapts threshold" `Quick
          test_budget_eviction;
        Alcotest.test_case "estimate accuracy" `Quick test_sampled_accuracy;
      ] );
    ( "core.sweep.sampled",
      [
        Alcotest.test_case "standard_sampled rate 1.0 = exact" `Quick
          test_standard_sampled_rate_one;
        Alcotest.test_case "partitioned_sampled None iff exact None" `Quick
          test_partitioned_sampled_none_agreement;
        Alcotest.test_case "best_split sampled ranking" `Quick
          test_best_split_sampled;
      ] );
    ( "layout.mrc_alloc.float",
      [
        Alcotest.test_case "float = int on integral curves" `Quick
          test_allocate_float_matches_int;
        Alcotest.test_case "fractional curves allocate" `Quick
          test_allocate_float_on_sampled_curves;
      ] );
  ]
