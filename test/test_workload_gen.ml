(* Tests for the traffic-shaped workload generators and per-request latency
   accounting: generator determinism and containment, the Zipf
   rank-frequency slope, hot-set drift, exact percentile arithmetic, and —
   the load-bearing property — byte-identical per-request latency
   distributions between the closed-form sweep evaluators and machine
   replay. *)

module Access = Memtrace.Access
module Packed = Memtrace.Packed
module Gen = Workloads.Gen
module Latency = Machine.Latency
module System = Machine.System
module Run_stats = Machine.Run_stats
module Sweep = Colcache.Sweep
module Bitmask = Cache.Bitmask

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let page_size = 256
let tlb_entries = 32

let cache_cfg ?(ways = 8) ?(size_bytes = 2048) () =
  Cache.Sassoc.config ~line_size:16 ~size_bytes ~ways ()

let fresh_system ?ways ?size_bytes () =
  System.create (System.config (cache_cfg ?ways ?size_bytes ()))

(* --- generator determinism / containment (qcheck) --- *)

let arb_stream =
  let open QCheck.Gen in
  let base =
    oneof
      [
        map (fun items -> Gen.Uniform { items = items + 1 }) (int_bound 255);
        map (fun items -> Gen.Scan { items = items + 1 }) (int_bound 255);
        map2
          (fun items theta ->
            Gen.Zipf { items = items + 1; theta = float_of_int theta /. 10. })
          (int_bound 255) (int_bound 15);
        map2
          (fun items hot ->
            let items = items + 2 in
            Gen.Hot_set
              {
                items;
                hot_items = 1 + (hot mod items);
                hot_prob = 0.9;
                drift_every = 50;
              })
          (int_bound 254) (int_bound 63);
      ]
  in
  let stream =
    oneof
      [
        base;
        map
          (fun ss -> Gen.Phased (List.map (fun s -> (20, s)) ss))
          (list_size (int_range 1 3) base);
      ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Gen.pp_stream) stream

let prop_deterministic =
  QCheck.Test.make ~name:"gen: equal seeds, equal traces" ~count:60
    (QCheck.pair arb_stream QCheck.small_nat) (fun (stream, seed) ->
      let t1 = Gen.emit ~seed ~n:300 ~accesses_per_request:3 stream in
      let t2 = Gen.emit ~seed ~n:300 ~accesses_per_request:3 stream in
      Packed.equal t1.Gen.packed t2.Gen.packed
      && t1.Gen.requests = t2.Gen.requests
      && t1.Gen.base = t2.Gen.base
      && t1.Gen.limit = t2.Gen.limit)

let prop_contained =
  QCheck.Test.make ~name:"gen: addresses stay inside [base, limit)" ~count:60
    (QCheck.pair arb_stream QCheck.small_nat) (fun (stream, seed) ->
      let t = Gen.emit ~base:4096 ~stride:32 ~seed ~n:400 stream in
      Gen.out_of_range t = None)

let prop_kv_contained =
  QCheck.Test.make ~name:"gen: kv requests stay inside [base, limit)"
    ~count:30 QCheck.small_nat (fun seed ->
      let t =
        Gen.kv ~seed ~requests:100 ~keys:64 ~buckets:16 ~value_lines:4 ()
      in
      Gen.out_of_range t = None
      && Array.length t.Gen.requests = 100
      (* kv spans tile the trace: contiguous, in order *)
      && fst t.Gen.requests.(0) = 0
      && snd t.Gen.requests.(99) = Packed.length t.Gen.packed
      && Array.for_all
           (fun (start, stop) -> start < stop)
           t.Gen.requests)

let prop_perturb_escapes =
  (* the [--inject-bug gen] mutation: rank+1 without re-clamping must
     escape the declared range once the top rank is drawn — near-certain
     at this tail mass and sample count *)
  QCheck.Test.make ~name:"gen: perturbed Zipf escapes containment" ~count:30
    QCheck.small_nat (fun seed ->
      let t =
        Gen.emit ~perturb:true ~seed ~n:10_000
          (Gen.Zipf { items = 8; theta = 0.5 })
      in
      Gen.out_of_range t <> None)

(* --- Zipf rank-frequency slope --- *)

let test_zipf_slope () =
  let theta = 1.0 in
  let items = 64 in
  let n = 100_000 in
  let t = Gen.emit ~seed:7 ~n ~write_ratio:0. (Gen.Zipf { items; theta }) in
  let counts = Array.make items 0 in
  let zipf_addrs = Packed.raw_addrs t.Gen.packed in
  for i = 0 to Bigarray.Array1.dim zipf_addrs - 1 do
    let item = zipf_addrs.{i} / 16 in
    counts.(item) <- counts.(item) + 1
  done;
  (* least-squares slope of log count against log rank over the head ranks,
     which hold enough mass for a stable estimate *)
  let head = 16 in
  let xs = Array.init head (fun k -> log (float_of_int (k + 1))) in
  let ys = Array.init head (fun k -> log (float_of_int counts.(k))) in
  let mean a = Array.fold_left ( +. ) 0. a /. float_of_int head in
  let mx = mean xs and my = mean ys in
  let num = ref 0. and den = ref 0. in
  for k = 0 to head - 1 do
    num := !num +. ((xs.(k) -. mx) *. (ys.(k) -. my));
    den := !den +. ((xs.(k) -. mx) *. (xs.(k) -. mx))
  done;
  let slope = !num /. !den in
  check_bool
    (Printf.sprintf "rank-frequency slope %.3f within 0.1 of -%.1f" slope
       theta)
    true
    (Float.abs (slope +. theta) < 0.1)

let test_hot_set_drift_shifts_mode () =
  let t =
    Gen.emit ~seed:11 ~n:2000 ~write_ratio:0.
      (Gen.Hot_set
         { items = 1024; hot_items = 32; hot_prob = 0.9; drift_every = 1000 })
  in
  let addrs = Packed.raw_addrs t.Gen.packed in
  let mode lo hi =
    let counts = Hashtbl.create 64 in
    for i = lo to hi - 1 do
      let item = addrs.{i} / 16 in
      Hashtbl.replace counts item
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts item))
    done;
    Hashtbl.fold
      (fun item c (best, best_c) ->
        if c > best_c then (item, c) else (best, best_c))
      counts (-1, 0)
    |> fst
  in
  let m1 = mode 0 1000 and m2 = mode 1000 2000 in
  check_bool "first window's mode inside initial hot set" true
    (m1 >= 0 && m1 < 32);
  check_bool "post-drift mode inside shifted hot set" true
    (m2 >= 32 && m2 < 64)

(* --- latency percentile arithmetic --- *)

let test_percentiles_exact () =
  (* 1..1000: nearest rank ceil(p/100 * 1000) *)
  let d = Latency.of_samples (Array.init 1000 (fun i -> 1000 - i)) in
  check_int "count" 1000 (Latency.count d);
  check_int "p50" 500 (Latency.p50 d);
  check_int "p99" 990 (Latency.p99 d);
  check_int "p99.9" 999 (Latency.p999 d);
  check_int "p100" 1000 (Latency.percentile d 100.);
  check_int "min via p0" 1 (Latency.percentile d 0.)

let test_percentiles_small () =
  let d = Latency.of_samples [| 7 |] in
  check_int "single sample p50" 7 (Latency.p50 d);
  check_int "single sample p99.9" 7 (Latency.p999 d);
  let d = Latency.of_samples [| 3; 1; 2 |] in
  check_int "three samples p50" 2 (Latency.p50 d);
  check_int "three samples p99" 3 (Latency.p99 d)

let test_latency_merge () =
  let a = Latency.of_samples [| 1; 5; 5 |] in
  let b = Latency.of_samples [| 2; 5; 9 |] in
  let m = Latency.merge a b in
  check_int "merged count" 6 (Latency.count m);
  check_int "merged sum" 27 (Latency.sum m);
  check_int "merged max" 9 (Latency.max_value m);
  check_bool "merge commutes" true (Latency.equal m (Latency.merge b a));
  check_bool "empty is neutral" true
    (Latency.equal a (Latency.merge a Latency.empty))

let test_builder_matches_of_samples () =
  let samples = [| 9; 3; 3; 12; 1; 3; 9 |] in
  let b = Latency.Builder.create ~initial_capacity:2 () in
  Array.iter (Latency.Builder.push b) samples;
  check_bool "builder = of_samples" true
    (Latency.equal (Latency.Builder.build b) (Latency.of_samples samples))

(* --- machine-level request accounting --- *)

let test_machine_requests_pinned () =
  (* Two identical cold-miss + hit request pairs on a direct trace: request
     latencies are exactly derivable from the timing model. Page 0 TLB
     misses once on the very first access. *)
  let timing = Machine.Timing.default in
  let b = Packed.Builder.create () in
  (* request 0: two reads of the same line — cold miss then hit *)
  Packed.Builder.emit b ~gap:0 0;
  Packed.Builder.emit b ~gap:0 0;
  (* request 1: same pattern on a different line *)
  Packed.Builder.emit b ~gap:0 64;
  Packed.Builder.emit b ~gap:0 64;
  let p = Packed.Builder.build b in
  let sys = fresh_system () in
  let stats = System.run_packed_requests sys p ~requests:[| (0, 2); (2, 4) |] in
  let miss =
    timing.Machine.Timing.hit_cycles + timing.Machine.Timing.miss_penalty
  in
  let hit = timing.Machine.Timing.hit_cycles in
  let r0 = miss + timing.Machine.Timing.tlb_miss_penalty + hit in
  let r1 = miss + hit in
  let d = stats.Run_stats.requests in
  check_int "two requests" 2 (Latency.count d);
  check_int "p50 is the cheap request" r1 (Latency.p50 d);
  check_int "p99 is the TLB-missing request" r0 (Latency.p99 d);
  check_int "sum accounts every window cycle" (r0 + r1) (Latency.sum d)

let test_machine_requests_aggregate_unchanged () =
  let t = Gen.emit ~seed:3 ~n:2000 (Gen.Zipf { items = 256; theta = 0.9 }) in
  let plain = System.run_packed (fresh_system ()) t.Gen.packed in
  let with_req =
    System.run_packed_requests (fresh_system ()) t.Gen.packed
      ~requests:t.Gen.requests
  in
  check_int "cycles" plain.Run_stats.cycles with_req.Run_stats.cycles;
  check_int "instructions" plain.Run_stats.instructions
    with_req.Run_stats.instructions;
  check_int "misses" plain.Run_stats.cache.Cache.Stats.misses
    with_req.Run_stats.cache.Cache.Stats.misses;
  check_int "tlb misses" plain.Run_stats.tlb_misses
    with_req.Run_stats.tlb_misses;
  check_int "every access in a window covered" 2000
    (Latency.count with_req.Run_stats.requests);
  check_int "windows partition total cycles" plain.Run_stats.cycles
    (Latency.sum with_req.Run_stats.requests)

let test_machine_requests_rejects_malformed () =
  let t = Gen.emit ~seed:3 ~n:16 (Gen.Uniform { items = 8 }) in
  let raises requests =
    try
      ignore
        (System.run_packed_requests (fresh_system ()) t.Gen.packed ~requests);
      false
    with Invalid_argument _ -> true
  in
  check_bool "empty span" true (raises [| (4, 4) |]);
  check_bool "out of bounds" true (raises [| (10, 20) |]);
  check_bool "overlap" true (raises [| (0, 4); (2, 6) |]);
  check_bool "unsorted" true (raises [| (8, 10); (0, 2) |])

(* --- sweep vs machine: byte-identical latency distributions --- *)

let check_stats_with_requests name (exact : Run_stats.t) (sweep : Run_stats.t)
    =
  check_int (name ^ " instructions") exact.instructions sweep.instructions;
  check_int (name ^ " cycles") exact.cycles sweep.cycles;
  check_int (name ^ " memory_accesses") exact.memory_accesses
    sweep.memory_accesses;
  check_int (name ^ " tlb_hits") exact.tlb_hits sweep.tlb_hits;
  check_int (name ^ " tlb_misses") exact.tlb_misses sweep.tlb_misses;
  check_int (name ^ " cache misses") exact.cache.Cache.Stats.misses
    sweep.cache.Cache.Stats.misses;
  check_int (name ^ " cache writebacks") exact.cache.Cache.Stats.writebacks
    sweep.cache.Cache.Stats.writebacks;
  check_int (name ^ " request count")
    (Latency.count exact.requests)
    (Latency.count sweep.requests);
  check_bool (name ^ " latency distributions byte-identical") true
    (Latency.equal exact.requests sweep.requests)

let streams_under_test =
  [
    ("zipf", Gen.Zipf { items = 256; theta = 0.9 });
    ("uniform", Gen.Uniform { items = 200 });
    ("scan", Gen.Scan { items = 300 });
    ( "hotset",
      Gen.Hot_set
        { items = 512; hot_items = 24; hot_prob = 0.85; drift_every = 300 } );
    ( "phased",
      Gen.Phased
        [
          (100, Gen.Zipf { items = 128; theta = 1.1 });
          (60, Gen.Scan { items = 400 });
        ] );
  ]

let test_sweep_standard_latency_exact () =
  List.iter
    (fun (name, stream) ->
      let t = Gen.emit ~seed:21 ~n:3000 ~accesses_per_request:5 stream in
      let exact =
        System.run_packed_requests (fresh_system ()) t.Gen.packed
          ~requests:t.Gen.requests
      in
      match
        Sweep.standard ~requests:t.Gen.requests ~cache:(cache_cfg ())
          ~timing:Machine.Timing.default ~page_size ~tlb_entries
          [ t.Gen.packed ]
      with
      | Some sweep -> check_stats_with_requests name exact sweep
      | None -> Alcotest.fail (name ^ ": standard sweep infeasible"))
    streams_under_test

let test_sweep_kv_latency_exact () =
  let t = Gen.kv ~seed:5 ~requests:600 ~keys:96 ~buckets:24 ~value_lines:3 () in
  let exact =
    System.run_packed_requests (fresh_system ()) t.Gen.packed
      ~requests:t.Gen.requests
  in
  match
    Sweep.standard ~requests:t.Gen.requests ~cache:(cache_cfg ())
      ~timing:Machine.Timing.default ~page_size ~tlb_entries [ t.Gen.packed ]
  with
  | Some sweep -> check_stats_with_requests "kv" exact sweep
  | None -> Alcotest.fail "kv: standard sweep infeasible"

let test_sweep_masked_latency_exact () =
  (* Two tenants in page-disjoint regions, confined to disjoint column
     groups: machine replay with retinted regions vs the closed-form masked
     evaluator, including the per-request distributions. *)
  let a = Gen.emit ~seed:31 ~n:1500 ~accesses_per_request:5 ~base:0
      (Gen.Zipf { items = 96; theta = 1.0 })
  in
  let b = Gen.emit ~seed:32 ~n:1000 ~accesses_per_request:4 ~base:65536
      (Gen.Scan { items = 512 })
  in
  let mask_a = Bitmask.range ~lo:0 ~hi:5 in
  let mask_b = Bitmask.range ~lo:6 ~hi:7 in
  let size_of (t : Gen.trace) = t.Gen.limit - t.Gen.base in
  let exact =
    let sys = fresh_system () in
    let mapping = System.mapping sys in
    List.iter
      (fun ((t : Gen.trace), mask, tint) ->
        ignore
          (Vm.Mapping.retint_region mapping ~base:t.Gen.base ~size:(size_of t)
             (Vm.Tint.make tint));
        Vm.Mapping.remap_tint mapping (Vm.Tint.make tint) mask)
      [ (a, mask_a, "a"); (b, mask_b, "b") ];
    let ra = System.run_packed_requests sys a.Gen.packed ~requests:a.Gen.requests in
    let rb = System.run_packed_requests sys b.Gen.packed ~requests:b.Gen.requests in
    Run_stats.add ra rb
  in
  let offset = Packed.length a.Gen.packed in
  let requests =
    Array.append a.Gen.requests
      (Array.map (fun (s, e) -> (s + offset, e + offset)) b.Gen.requests)
  in
  match
    Sweep.masked ~requests ~cache:(cache_cfg ())
      ~timing:Machine.Timing.default ~page_size ~tlb_entries
      ~regions:
        [
          (a.Gen.base, size_of a, mask_a);
          (b.Gen.base, size_of b, mask_b);
        ]
      [ a.Gen.packed; b.Gen.packed ]
  with
  | Some sweep -> check_stats_with_requests "masked" exact sweep
  | None -> Alcotest.fail "masked sweep infeasible"

let test_sweep_masked_rejects_overlap () =
  let a = Gen.emit ~seed:31 ~n:100 (Gen.Uniform { items = 32 }) in
  check_bool "overlapping masks infeasible" true
    (Sweep.masked ~cache:(cache_cfg ()) ~timing:Machine.Timing.default
       ~page_size ~tlb_entries
       ~regions:
         [
           (0, 4096, Bitmask.range ~lo:0 ~hi:4);
           (65536, 4096, Bitmask.range ~lo:4 ~hi:7);
         ]
       [ a.Gen.packed ]
    = None)

let suites =
  [
    ( "workload_gen",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_deterministic;
          prop_contained;
          prop_kv_contained;
          prop_perturb_escapes;
        ]
      @ [
          Alcotest.test_case "zipf rank-frequency slope" `Quick
            test_zipf_slope;
          Alcotest.test_case "hot-set drift shifts the mode" `Quick
            test_hot_set_drift_shifts_mode;
        ] );
    ( "latency",
      [
        Alcotest.test_case "nearest-rank percentiles exact" `Quick
          test_percentiles_exact;
        Alcotest.test_case "tiny distributions" `Quick test_percentiles_small;
        Alcotest.test_case "merge" `Quick test_latency_merge;
        Alcotest.test_case "builder = of_samples" `Quick
          test_builder_matches_of_samples;
        Alcotest.test_case "machine: hand-built request latencies" `Quick
          test_machine_requests_pinned;
        Alcotest.test_case "machine: aggregates unchanged by windows" `Quick
          test_machine_requests_aggregate_unchanged;
        Alcotest.test_case "machine: malformed spans rejected" `Quick
          test_machine_requests_rejects_malformed;
      ] );
    ( "latency_sweep_equality",
      [
        Alcotest.test_case "standard sweep = machine, per stream" `Quick
          test_sweep_standard_latency_exact;
        Alcotest.test_case "kv workload" `Quick test_sweep_kv_latency_exact;
        Alcotest.test_case "masked tenants = machine" `Quick
          test_sweep_masked_latency_exact;
        Alcotest.test_case "masked rejects overlapping masks" `Quick
          test_sweep_masked_rejects_overlap;
      ] );
  ]
