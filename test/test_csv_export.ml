(* Tests for Core.Csv_export.write_rows: golden output (exact bytes for a
   fixed input, so the quoting rules can't drift silently) and a parse-back
   round-trip covering the quoting edge cases. *)

module Csv = Colcache.Csv_export

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_rows ~header rows f =
  let path = tmp_path "colcache_test_csv.csv" in
  Csv.write_rows ~path ~header rows;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f (read_file path))

(* A minimal RFC-4180 reader, independent of the writer: split records on
   newlines outside quotes, fields on commas outside quotes, undouble "". *)
let parse_csv text =
  let records = ref [] and fields = ref [] and buf = Buffer.create 16 in
  let in_quotes = ref false in
  let n = String.length text in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    (if !in_quotes then
       match c with
       | '"' when !i + 1 < n && text.[!i + 1] = '"' ->
           Buffer.add_char buf '"';
           incr i
       | '"' -> in_quotes := false
       | c -> Buffer.add_char buf c
     else
       match c with
       | '"' -> in_quotes := true
       | ',' -> flush_field ()
       | '\n' -> flush_record ()
       | c -> Buffer.add_char buf c);
    incr i
  done;
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let test_golden () =
  let header = [ "name"; "value"; "note" ] in
  let rows =
    [
      [ "plain"; "1"; "no quoting needed" ];
      [ "comma,inside"; "2"; "gets quoted" ];
      [ "say \"hi\""; "3"; "quotes doubled" ];
      [ "multi\nline"; "4"; "newline quoted" ];
      [ ""; ""; "" ];
    ]
  in
  let expected =
    "name,value,note\n" ^ "plain,1,no quoting needed\n"
    ^ "\"comma,inside\",2,gets quoted\n"
    ^ "\"say \"\"hi\"\"\",3,quotes doubled\n"
    ^ "\"multi\nline\",4,newline quoted\n" ^ ",,\n"
  in
  with_rows ~header rows (fun got ->
      Alcotest.(check string) "exact bytes" expected got)

let test_roundtrip () =
  let header = [ "a"; "b" ] in
  let rows =
    [
      [ "x,y"; "\"quoted\"" ];
      [ "line\nbreak"; "trailing," ];
      [ ",,,"; "\"\"" ];
      [ "plain"; "also plain" ];
    ]
  in
  with_rows ~header rows (fun text ->
      Alcotest.(check (list (list string)))
        "reader recovers writer input" (header :: rows) (parse_csv text))

let test_empty_rows () =
  with_rows ~header:[ "only"; "header" ] [] (fun got ->
      Alcotest.(check string) "header line only" "only,header\n" got)

(* The tail-latency figure, serialized through the same rows write_all
   uses, pinned byte-for-byte. The generators are seeded and the machine
   model deterministic, so any drift in these numbers is a real behavior
   change in the generators, the latency accounting, or the MRC
   allocation — not noise. *)
module Tl = Colcache.Experiments.Tail_latency

let test_tail_latency_golden () =
  let tl = Tl.run () in
  let path = tmp_path "colcache_tail_latency.csv" in
  Csv.write_rows ~path ~header:Csv.tail_latency_header
    (Csv.tail_latency_rows tl);
  let got =
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> read_file path)
  in
  let expected =
    "tenant,columns,shared_p50,shared_p99,shared_p999,partitioned_p50,\
     partitioned_p99,partitioned_p999\n\
     all,8,59,207,217,23,206,212\n\
     zipf_hot,4,24,88,135,20,61,135\n\
     zipf_warm,3,46,114,202,21,97,202\n\
     scan,1,194,210,218,192,209,213\n"
  in
  Alcotest.(check string) "tail_latency.csv exact bytes" expected got;
  (* the figure's claim: column partitioning beats the shared cache at the
     p99 tail for both Zipf tenants *)
  List.iter
    (fun (r : Tl.row) ->
      if r.Tl.tenant = "zipf_hot" || r.Tl.tenant = "zipf_warm" then
        Alcotest.(check bool)
          (r.Tl.tenant ^ " p99 improves under partitioning")
          true
          (r.Tl.part_p99 < r.Tl.shared_p99))
    tl.Tl.rows;
  Alcotest.(check bool) "shared sweep matches machine replay" true
    tl.Tl.shared_sweep_exact;
  Alcotest.(check bool) "partitioned sweep matches machine replay" true
    tl.Tl.partitioned_sweep_exact

let suites =
  [
    ( "core.csv_export",
      [
        Alcotest.test_case "golden quoting" `Quick test_golden;
        Alcotest.test_case "round-trip through a reader" `Quick test_roundtrip;
        Alcotest.test_case "no rows" `Quick test_empty_rows;
        Alcotest.test_case "tail-latency figure golden CSV" `Quick
          test_tail_latency_golden;
      ] );
  ]
