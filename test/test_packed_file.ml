(* Tests for the packed binary trace file format: golden byte-pinned header,
   header validation (magic / version / truncation / byte-order probe),
   mmap round-trips, streaming-Writer equivalence, and the
   Trace_file/Packed interop contract the replay tools depend on. *)

module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Packed = Memtrace.Packed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "colcache_%s_%d.pk" name (Unix.getpid ()))

let with_tmp name f =
  let path = tmp_path name in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let rejects ?(substring = "") f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      if substring <> "" then
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        check_bool
          (Printf.sprintf "error %S mentions %S" msg substring)
          true (contains msg substring)

(* A small fixed trace with two interned variables, used by the golden and
   corruption tests. *)
let golden_trace () =
  Packed.of_list
    [
      Access.make ~kind:Access.Write ~var:"x" ~gap:1 0x10;
      Access.make ~kind:Access.Read 0x20;
      Access.make ~kind:Access.Ifetch ~var:"y" ~gap:2 0x30;
    ]

(* --- golden header ------------------------------------------------------ *)

(* The first 96 bytes of the file are pinned byte-for-byte: the format is an
   on-disk contract, and any layout change must be deliberate (and bump the
   version). n = 3 gives one page per column: addrs at 4096, gaps at 8192,
   kinds at 12288, tags at 16384, vars at 16384 + 24. The variable table is
   "x" then "y" in first-appearance order, 9 bytes each. *)
let test_golden_header () =
  with_tmp "golden" (fun path ->
      Packed.write_file path (golden_trace ());
      let data = read_bytes path in
      let expected = Bytes.make 96 '\000' in
      Bytes.blit_string "colcache-packed\n" 0 expected 0 16;
      let set off v = Bytes.set_int64_le expected off (Int64.of_int v) in
      set 16 1 (* version *);
      set 24 3 (* accesses *);
      set 32 4096 (* addrs_off *);
      set 40 8192 (* gaps_off *);
      set 48 12288 (* kinds_off *);
      set 56 16384 (* tags_off *);
      set 64 (16384 + 24) (* var_off *);
      set 72 2 (* var_count *);
      set 80 18 (* var_bytes: (8 + 1) * 2 *);
      set 88 0x0123456789abcde (* byte-order probe *);
      check_bool "header prefix is byte-identical" true
        (String.sub data 0 96 = Bytes.to_string expected);
      check_bool "rest of header page is zero" true
        (String.for_all (fun c -> c = '\000') (String.sub data 96 (4096 - 96)));
      check_int "file size = var_off + var_bytes" (16384 + 24 + 18)
        (String.length data);
      (* the first column word is the first address, little-endian *)
      check_int "first addr word" 0x10
        (Int64.to_int (Bytes.get_int64_le (Bytes.of_string data) 4096)))

(* --- header validation -------------------------------------------------- *)

let corrupt ~at byte path data =
  let b = Bytes.of_string data in
  Bytes.set b at byte;
  write_bytes path (Bytes.to_string b)

let test_reject_bad_magic () =
  with_tmp "badmagic" (fun path ->
      Packed.write_file path (golden_trace ());
      let data = read_bytes path in
      corrupt ~at:0 'X' path data;
      rejects ~substring:"magic" (fun () -> Packed.map_file path);
      check_bool "not sniffed as packed" true (not (Packed.is_packed_file path)))

let test_reject_version_mismatch () =
  with_tmp "badversion" (fun path ->
      Packed.write_file path (golden_trace ());
      let data = read_bytes path in
      corrupt ~at:16 '\002' path data;
      rejects ~substring:"version" (fun () -> Packed.map_file path))

let test_reject_truncated () =
  with_tmp "trunc" (fun path ->
      Packed.write_file path (golden_trace ());
      let data = read_bytes path in
      (* cut inside the var table: header still parses, size check fires *)
      write_bytes path (String.sub data 0 (String.length data - 5));
      rejects (fun () -> Packed.map_file path);
      (* cut inside the header page itself: clean error, not a crash *)
      write_bytes path (String.sub data 0 100);
      rejects (fun () -> Packed.map_file path);
      (* empty file *)
      write_bytes path "";
      rejects (fun () -> Packed.map_file path))

let test_reject_probe_mismatch () =
  with_tmp "probe" (fun path ->
      Packed.write_file path (golden_trace ());
      let data = read_bytes path in
      (* flipping one probe byte simulates a foreign-endianness file *)
      corrupt ~at:88 '\xff' path data;
      rejects (fun () -> Packed.map_file path))

let test_reject_offset_mismatch () =
  with_tmp "offsets" (fun path ->
      Packed.write_file path (golden_trace ());
      let data = read_bytes path in
      let b = Bytes.of_string data in
      Bytes.set_int64_le b 40 (Int64.of_int 12288) (* wrong gaps_off *);
      write_bytes path (Bytes.to_string b);
      rejects (fun () -> Packed.map_file path))

(* --- round-trips -------------------------------------------------------- *)

let test_roundtrip_fixed () =
  with_tmp "fixed" (fun path ->
      let t = golden_trace () in
      Packed.write_file path t;
      let m = Packed.map_file path in
      check_bool "packed equal" true (Packed.equal t m);
      check_bool "to_trace equal" true
        (Trace.equal (Packed.to_trace t) (Packed.to_trace m)))

let test_roundtrip_empty () =
  with_tmp "empty" (fun path ->
      Packed.write_file path (Packed.of_list []);
      let m = Packed.map_file path in
      check_int "empty maps to 0 accesses" 0 (Packed.length m);
      check_bool "to_trace is empty" true (Trace.is_empty (Packed.to_trace m)))

let test_roundtrip_max_address () =
  with_tmp "maxaddr" (fun path ->
      let t =
        Packed.of_list
          [ Access.make max_int; Access.make ~kind:Access.Write ~gap:max_int 0 ]
      in
      Packed.write_file path t;
      let m = Packed.map_file path in
      check_int "max_int address survives" max_int (Packed.addr m 0);
      check_int "max_int gap survives" max_int (Packed.gap m 1);
      check_bool "equal" true (Packed.equal t m))

let arb_trace =
  let access =
    QCheck.Gen.(
      map3
        (fun addr gap (kind, var) -> Access.make ~kind ?var ~gap addr)
        (oneof [ int_bound 0xffff; int_bound 0xffffffff ])
        (int_bound 7)
        (pair
           (oneofl [ Access.Read; Access.Write; Access.Ifetch ])
           (oneofl [ None; Some "a"; Some "b"; Some "long_variable_name" ])))
  in
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map Access.to_string l))
    QCheck.Gen.(list_size (int_bound 300) access)

let qcheck_mmap_roundtrip =
  QCheck.Test.make ~name:"write_file -> map_file -> to_trace is lossless"
    ~count:60 arb_trace (fun accesses ->
      with_tmp "qc" (fun path ->
          let t = Packed.of_list accesses in
          Packed.write_file path t;
          let m = Packed.map_file path in
          Packed.equal t m
          && Trace.equal (Packed.to_trace m) (Trace.of_list accesses)))

(* --- streaming writer --------------------------------------------------- *)

let test_writer_equals_write_file () =
  with_tmp "writer" (fun path ->
      with_tmp "writefile" (fun path' ->
          let t = golden_trace () in
          Packed.write_file path' t;
          let w = Packed.Writer.create path ~length:(Packed.length t) in
          Packed.iter
            (fun a ->
              Packed.Writer.emit w ~kind:a.Access.kind ?var:a.Access.var
                ~gap:a.Access.gap a.Access.addr)
            t;
          Packed.Writer.close w;
          check_bool "byte-identical to write_file" true
            (read_bytes path = read_bytes path');
          check_bool "maps back equal" true
            (Packed.equal t (Packed.map_file path))))

let test_writer_misuse () =
  with_tmp "misuse" (fun path ->
      let w = Packed.Writer.create path ~length:2 in
      Packed.Writer.emit w 1;
      (* closing before the declared length is an error: the header's count
         would lie about the columns *)
      rejects (fun () -> Packed.Writer.close w));
  with_tmp "overflow" (fun path ->
      let w = Packed.Writer.create path ~length:1 in
      Packed.Writer.emit w 1;
      rejects (fun () -> Packed.Writer.emit w 2));
  with_tmp "negative" (fun path ->
      let w = Packed.Writer.create path ~length:1 in
      rejects (fun () -> Packed.Writer.emit w ~gap:(-1) 4))

(* --- Trace_file interop ------------------------------------------------- *)

let test_text_loader_names_packed_files () =
  with_tmp "interop" (fun path ->
      Packed.write_file path (golden_trace ());
      (* the text loader must identify the format, not drown in NUL bytes *)
      rejects ~substring:"packed" (fun () ->
          Memtrace.Trace_file.load ~path))

let test_load_packed_dispatches () =
  with_tmp "dispatch_bin" (fun bin ->
      with_tmp "dispatch_txt" (fun txt ->
          let t = golden_trace () in
          Packed.write_file bin t;
          Memtrace.Trace_file.save ~path:txt (Packed.to_trace t);
          check_bool "binary loads" true
            (Packed.equal t (Memtrace.Trace_file.load_packed ~path:bin));
          check_bool "text loads" true
            (Packed.equal t (Memtrace.Trace_file.load_packed ~path:txt))))

(* The regression the interop fix pins: a packed trace written to disk,
   mapped back, and replayed must produce Run_stats identical to replaying
   the in-memory trace — including the per-request latency distribution. *)
let test_mapped_replay_equals_in_memory () =
  let gen =
    Workloads.Gen.emit ~seed:91 ~n:6000 ~accesses_per_request:5
      (Workloads.Gen.Zipf { items = 1024; theta = 0.9 })
  in
  let packed = gen.Workloads.Gen.packed in
  with_tmp "replay" (fun path ->
      Packed.write_file path packed;
      let mapped = Packed.map_file path in
      let cfg =
        Machine.System.config
          (Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
      in
      let run p =
        Machine.System.run_packed_requests
          (Machine.System.create cfg)
          p ~requests:gen.Workloads.Gen.requests
      in
      let mem = run packed in
      let disk = run mapped in
      check_bool "aggregate stats identical" true
        (mem = { disk with Machine.Run_stats.requests = mem.requests });
      check_bool "latency distributions identical" true
        (Machine.Latency.equal mem.Machine.Run_stats.requests
           disk.Machine.Run_stats.requests))

let suites =
  [
    ( "memtrace.packed_file",
      [
        Alcotest.test_case "golden byte-pinned header" `Quick
          test_golden_header;
        Alcotest.test_case "bad magic rejected" `Quick test_reject_bad_magic;
        Alcotest.test_case "version mismatch rejected" `Quick
          test_reject_version_mismatch;
        Alcotest.test_case "truncated file rejected" `Quick
          test_reject_truncated;
        Alcotest.test_case "byte-order probe rejected" `Quick
          test_reject_probe_mismatch;
        Alcotest.test_case "offset mismatch rejected" `Quick
          test_reject_offset_mismatch;
        Alcotest.test_case "fixed round-trip" `Quick test_roundtrip_fixed;
        Alcotest.test_case "empty round-trip" `Quick test_roundtrip_empty;
        Alcotest.test_case "max-address round-trip" `Quick
          test_roundtrip_max_address;
        QCheck_alcotest.to_alcotest qcheck_mmap_roundtrip;
        Alcotest.test_case "Writer = write_file byte-for-byte" `Quick
          test_writer_equals_write_file;
        Alcotest.test_case "Writer misuse rejected" `Quick test_writer_misuse;
        Alcotest.test_case "text loader names packed files" `Quick
          test_text_loader_names_packed_files;
        Alcotest.test_case "load_packed dispatches on magic" `Quick
          test_load_packed_dispatches;
        Alcotest.test_case "mapped replay = in-memory replay" `Quick
          test_mapped_replay_equals_in_memory;
      ] );
  ]
