(* The differential conformance harness: a fixed-seed soak of the real
   simulators against the naive oracle, mutation tests proving the harness
   catches (and shrinks) planted replacement bugs, and unit coverage of the
   invariant checkers and the scenario format. *)

module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Access = Memtrace.Access
module Oracle = Check.Oracle
module Gen = Check.Gen
module Diff = Check.Diff
module Scenario = Check.Scenario
module Invariant = Check.Invariant
module Prng = Check.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- the fixed-seed batch --- *)

let soak_result = lazy (Diff.soak ~seed:42 ~iters:500 ())

let test_soak_agrees () =
  match Lazy.force soak_result with
  | Ok summary -> check_int "iterations" 500 summary.Diff.iters
  | Error (failure, _) ->
      Alcotest.failf "divergence: %a" Diff.pp_failure failure

let test_soak_covers_policies () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      Alcotest.(check (list string))
        "all four policy families exercised"
        [ "fifo"; "lru"; "plru"; "random" ]
        summary.Diff.policies

let test_soak_covers_geometries () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      check_int "1-way cache exercised" 1 summary.Diff.min_ways;
      check_int "max-way cache exercised" Bitmask.max_columns
        summary.Diff.max_ways;
      check_bool "re-tints happened mid-trace" true (summary.Diff.retints > 0);
      check_bool "re-maps happened mid-trace" true (summary.Diff.remaps > 0)

let test_soak_covers_fast_path () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      check_int "half the scenarios replayed through access_trace" 250
        summary.Diff.fast_path_iters

let test_soak_covers_machine () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      check_int "half the scenarios replayed through the machine diff" 250
        summary.Diff.machine_iters

let test_soak_covers_sampled () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      (* every fourth scenario (i mod 4 = 3) also runs the sampled-vs-exact
         error-bound differential: 125 of 500 *)
      check_int "sampled-estimator scenarios" 125 summary.Diff.sample_iters

let test_soak_covers_shard () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      (* the remaining quarter slot (i mod 4 = 2) runs the sharded-vs-serial
         stack-distance differential: 125 of 500 *)
      check_int "sharded-vs-serial scenarios" 125 summary.Diff.shard_iters

let test_soak_covers_traffic () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      (* Every third iteration after the 8-scenario forced preamble:
         i in [8, 500) with i mod 3 = 2 — 164 of them. *)
      check_int "traffic-shaped generator scenarios" 164
        summary.Diff.traffic_iters

let test_soak_covers_wcet () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      (* Every fifth iteration after the 8-scenario forced preamble:
         i in [8, 500) with i mod 5 = 4 — 99 of them. *)
      check_int "wcet static-bound checks" 99 summary.Diff.wcet_iters

let test_soak_covers_event () =
  match Lazy.force soak_result with
  | Error _ -> Alcotest.fail "soak diverged"
  | Ok summary ->
      (* Every third iteration, preamble included: i in [0, 500) with
         i mod 3 = 0 — 167 of them. *)
      check_int "event-core count differentials" 167 summary.Diff.event_iters

(* --- mutation tests: a harness that cannot catch a planted bug proves
   nothing, so plant three and insist each is caught and shrunk small --- *)

let mutation_caught bug =
  match Diff.soak ~bug ~seed:42 ~iters:500 () with
  | Ok _ ->
      Alcotest.failf "injected bug %s survived 500 iterations"
        (Oracle.bug_to_string bug)
  | Error (failure, _) ->
      let sc = failure.Diff.scenario in
      (* Replay with the driver that caught it: a fast-path repro only
         diverges through the batched driver. *)
      check_bool "repro still diverges" true
        (match Diff.run_scenario ~bug ~fast_path:failure.Diff.fast_path sc with
        | Diff.Diverge _ -> true
        | Diff.Agree -> false);
      check_bool
        (Printf.sprintf "repro is <= 20 accesses (got %d)"
           (Scenario.accesses sc))
        true
        (Scenario.accesses sc <= 20);
      check_bool "repro survives the textual round-trip" true
        (Scenario.equal sc (Scenario.of_string (Scenario.to_string sc)))

let test_mutation_mru () = mutation_caught Oracle.Mru_instead_of_lru
let test_mutation_ignore_mask () = mutation_caught Oracle.Ignore_mask
let test_mutation_writeback () = mutation_caught Oracle.Skip_writeback_count

let test_mutation_fast_path () =
  (* The planted batching bug only exists in the fast-path driver, so the
     divergence must be caught on a fast-path iteration. *)
  match Diff.soak ~bug:Oracle.Fast_path ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "fast-path bug survived 500 iterations"
  | Error (failure, _) ->
      check_bool "caught by the batched driver" true failure.Diff.fast_path;
      check_bool "repro diverges under the batched driver" true
        (match
           Diff.run_scenario ~bug:Oracle.Fast_path ~fast_path:true
             failure.Diff.scenario
         with
        | Diff.Diverge _ -> true
        | Diff.Agree -> false);
      check_bool "repro agrees without the planted bug" true
        (match
           Diff.run_scenario ~fast_path:true failure.Diff.scenario
         with
        | Diff.Agree -> true
        | Diff.Diverge _ -> false)

let test_mutation_machine_fast_path () =
  (* The planted gap-zeroing bug only exists in the machine-level batched
     replay, so the divergence must be caught on a machine iteration. *)
  match Diff.soak ~bug:Oracle.Machine_fast_path ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "machine-fast-path bug survived 500 iterations"
  | Error (failure, _) ->
      check_bool "caught by the machine batched-replay driver" true
        failure.Diff.machine;
      check_bool "repro diverges under the machine driver" true
        (match
           Check.Machine_diff.run_scenario ~bug:Oracle.Machine_fast_path
             failure.Diff.scenario
         with
        | Check.Machine_diff.Diverge _ -> true
        | Check.Machine_diff.Agree -> false);
      check_bool "repro agrees without the planted bug" true
        (match Check.Machine_diff.run_scenario failure.Diff.scenario with
        | Check.Machine_diff.Agree -> true
        | Check.Machine_diff.Diverge _ -> false);
      check_bool "repro survives the textual round-trip" true
        (Scenario.equal failure.Diff.scenario
           (Scenario.of_string (Scenario.to_string failure.Diff.scenario)))

let test_mutation_gen () =
  (* The planted Zipf-sampler bug lives in the workload generator, so it is
     caught by the containment check on a traffic-shaped iteration — a
     generator-vs-declaration violation, not a driver divergence. *)
  match Diff.soak ~bug:Oracle.Gen ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "gen bug survived 500 iterations"
  | Error (failure, summary) ->
      check_bool "flagged as a generator-containment failure" true
        failure.Diff.gen;
      check_bool "not attributed to any driver" true
        ((not failure.Diff.fast_path)
        && (not failure.Diff.machine)
        && not failure.Diff.mrc);
      check_int "repro is the single offending access" 1
        (Scenario.length failure.Diff.scenario);
      check_bool "some traffic scenarios ran before the catch" true
        (summary.Diff.traffic_iters > 0);
      check_bool "repro survives the textual round-trip" true
        (Scenario.equal failure.Diff.scenario
           (Scenario.of_string (Scenario.to_string failure.Diff.scenario)))

let test_mutation_sample () =
  (* The planted forgotten-rescale bug only exists in the sampled-estimator
     driver, so the divergence must be caught on a sampled iteration and
     attributed to no other driver. *)
  match Diff.soak ~bug:Oracle.Sample ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "sample bug survived 500 iterations"
  | Error (failure, summary) ->
      check_bool "caught by the sampled-estimator driver" true
        failure.Diff.sample;
      check_bool "not attributed to any other driver" true
        ((not failure.Diff.fast_path)
        && (not failure.Diff.machine)
        && (not failure.Diff.mrc)
        && not failure.Diff.gen);
      check_bool "some sampled scenarios ran before the catch" true
        (summary.Diff.sample_iters > 0);
      check_bool "repro still diverges under the sampled driver" true
        (match
           Check.Sample_diff.run_scenario ~bug:Oracle.Sample
             failure.Diff.scenario
         with
        | Check.Sample_diff.Diverge _ -> true
        | Check.Sample_diff.Agree -> false);
      check_bool "repro agrees without the planted bug" true
        (match Check.Sample_diff.run_scenario failure.Diff.scenario with
        | Check.Sample_diff.Agree -> true
        | Check.Sample_diff.Diverge _ -> false);
      check_bool "repro survives the textual round-trip" true
        (Scenario.equal failure.Diff.scenario
           (Scenario.of_string (Scenario.to_string failure.Diff.scenario)))

let test_mutation_wcet () =
  (* The planted unsound must-join lives in the static cache analysis, so
     it is caught by the bound-vs-replay check on a wcet iteration — a
     static-bound violation, not a driver divergence. *)
  match Diff.soak ~bug:Oracle.Wcet ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "wcet bug survived 500 iterations"
  | Error (failure, summary) ->
      check_bool "flagged as a wcet static-bound failure" true
        failure.Diff.wcet;
      check_bool "not attributed to any driver" true
        ((not failure.Diff.fast_path)
        && (not failure.Diff.machine)
        && (not failure.Diff.mrc)
        && (not failure.Diff.sample)
        && not failure.Diff.gen);
      check_bool "some wcet checks ran before the catch" true
        (summary.Diff.wcet_iters > 0)

let test_mutation_event () =
  (* The planted MSHR-merge bug lives in the event core's delayed-hit path
     (a merged access replayed against the cache twice), so it must be
     caught by the event-core count differential and attributed to no
     other driver. *)
  match Diff.soak ~bug:Oracle.Event ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "event bug survived 500 iterations"
  | Error (failure, _) ->
      check_bool "caught by the event-core count differential" true
        failure.Diff.event;
      check_bool "not attributed to any other driver" true
        ((not failure.Diff.fast_path)
        && (not failure.Diff.machine)
        && (not failure.Diff.mrc)
        && (not failure.Diff.sample)
        && (not failure.Diff.gen)
        && not failure.Diff.wcet);
      check_bool
        (Printf.sprintf "repro is <= 20 accesses (got %d)"
           (Scenario.accesses failure.Diff.scenario))
        true
        (Scenario.accesses failure.Diff.scenario <= 20);
      check_bool "repro still diverges under the event driver" true
        (match
           Check.Event_diff.run_scenario ~bug:Oracle.Event
             failure.Diff.scenario
         with
        | Check.Event_diff.Diverge _ -> true
        | Check.Event_diff.Agree -> false);
      check_bool "repro agrees without the planted bug" true
        (match Check.Event_diff.run_scenario failure.Diff.scenario with
        | Check.Event_diff.Agree -> true
        | Check.Event_diff.Diverge _ -> false);
      check_bool "repro survives the textual round-trip" true
        (Scenario.equal failure.Diff.scenario
           (Scenario.of_string (Scenario.to_string failure.Diff.scenario)))

let test_mutation_shard () =
  (* The planted merge bug drops the last worker's shard from the sharded
     stack-distance merge, so it must be caught by the sharded-vs-serial
     differential and attributed to no other driver. *)
  match Diff.soak ~bug:Oracle.Shard ~seed:42 ~iters:500 () with
  | Ok _ -> Alcotest.fail "shard bug survived 500 iterations"
  | Error (failure, summary) ->
      check_bool "caught by the sharded-vs-serial differential" true
        failure.Diff.shard;
      check_bool "not attributed to any other driver" true
        ((not failure.Diff.fast_path)
        && (not failure.Diff.machine)
        && (not failure.Diff.mrc)
        && (not failure.Diff.sample)
        && (not failure.Diff.gen)
        && (not failure.Diff.wcet)
        && not failure.Diff.event);
      check_bool "some sharded scenarios ran before the catch" true
        (summary.Diff.shard_iters > 0);
      check_bool
        (Printf.sprintf "repro is <= 20 accesses (got %d)"
           (Scenario.accesses failure.Diff.scenario))
        true
        (Scenario.accesses failure.Diff.scenario <= 20);
      check_bool "repro still diverges under the sharded driver" true
        (match
           Check.Shard_diff.run_scenario ~bug:Oracle.Shard
             failure.Diff.scenario
         with
        | Check.Shard_diff.Diverge _ -> true
        | Check.Shard_diff.Agree -> false);
      check_bool "repro agrees without the planted bug" true
        (match Check.Shard_diff.run_scenario failure.Diff.scenario with
        | Check.Shard_diff.Agree -> true
        | Check.Shard_diff.Diverge _ -> false);
      check_bool "repro survives the textual round-trip" true
        (Scenario.equal failure.Diff.scenario
           (Scenario.of_string (Scenario.to_string failure.Diff.scenario)))

(* --- the oracle on its own: agreement with hand-computed semantics --- *)

let test_oracle_direct_lru () =
  (* 1 set, 2 ways, LRU: fill, fill, hit way 0, evict way 1. *)
  let cfg = Sassoc.config ~line_size:16 ~size_bytes:32 ~ways:2 () in
  let o = Oracle.create cfg in
  (match Oracle.access o ~kind:Access.Read 0 with
  | Sassoc.Miss { way = 0; evicted_line = None } -> ()
  | _ -> Alcotest.fail "first access should miss into way 0");
  ignore (Oracle.access o ~kind:Access.Read 16);
  (* touch line 0 again so line 1 becomes LRU *)
  (match Oracle.access o ~kind:Access.Read 4 with
  | Sassoc.Hit { way = 0 } -> ()
  | _ -> Alcotest.fail "expected hit in way 0");
  match Oracle.access o ~kind:Access.Read 32 with
  | Sassoc.Miss { way = 1; evicted_line = Some 1 } -> ()
  | _ -> Alcotest.fail "expected eviction of LRU line 1 from way 1"

let test_oracle_rejects_empty_mask () =
  let cfg = Sassoc.config ~line_size:16 ~size_bytes:64 ~ways:2 () in
  let o = Oracle.create cfg in
  check_bool "empty mask" true
    (try ignore (Oracle.access o ~mask:Bitmask.empty ~kind:Access.Read 0); false
     with Invalid_argument _ -> true);
  check_bool "out-of-range-only mask" true
    (try
       ignore (Oracle.access o ~mask:(Bitmask.singleton 5) ~kind:Access.Read 0);
       false
     with Invalid_argument _ -> true)

(* --- invariant checkers --- *)

let test_invariant_victim_in_mask () =
  let m = Bitmask.of_list [ 1; 2 ] in
  check_bool "inside" true
    (Invariant.victim_in_mask ~mask:m
       (Sassoc.Miss { way = 2; evicted_line = None })
     = Ok ());
  check_bool "outside" true
    (match
       Invariant.victim_in_mask ~mask:m
         (Sassoc.Miss { way = 0; evicted_line = None })
     with
    | Error _ -> true
    | Ok () -> false);
  check_bool "hits are exempt" true
    (Invariant.victim_in_mask ~mask:m (Sassoc.Hit { way = 0 }) = Ok ())

let test_invariant_stats_conserved () =
  let s = Cache.Stats.create ~ways:2 in
  s.Cache.Stats.accesses <- 10;
  s.Cache.Stats.hits <- 6;
  s.Cache.Stats.misses <- 4;
  check_bool "conserved" true (Invariant.stats_conserved s = Ok ());
  s.Cache.Stats.hits <- 7;
  check_bool "violation detected" true
    (match Invariant.stats_conserved s with Error _ -> true | Ok () -> false)

let test_invariant_occupancy () =
  let cfg = Sassoc.config ~line_size:16 ~size_bytes:64 ~ways:4 () in
  let c = Sassoc.create cfg in
  let m = Bitmask.of_list [ 1; 3 ] in
  ignore (Sassoc.access c ~mask:m ~kind:Access.Read 0);
  ignore (Sassoc.access c ~mask:m ~kind:Access.Read 16);
  check_bool "stays inside fill masks" true
    (Invariant.occupancy_within c ~set:0 ~allowed:m = Ok ());
  check_int "occupancy" 2 (Sassoc.set_occupancy c 0);
  check_bool "tighter mask flags it" true
    (match Invariant.occupancy_within c ~set:0 ~allowed:(Bitmask.singleton 1) with
    | Error _ -> true
    | Ok () -> false)

let test_invariant_lru_monitor () =
  let cfg = Sassoc.config ~line_size:16 ~size_bytes:32 ~ways:2 () in
  let mon = Invariant.Lru_monitor.create cfg in
  let full = Bitmask.full ~n:2 in
  let ok r = Alcotest.(check bool) "monitor accepts" true (r = Ok ()) in
  ok (Invariant.Lru_monitor.note mon ~mask:full ~kind:Access.Read 0
        (Sassoc.Miss { way = 0; evicted_line = None }));
  ok (Invariant.Lru_monitor.note mon ~mask:full ~kind:Access.Read 16
        (Sassoc.Miss { way = 1; evicted_line = None }));
  (* claiming to evict way 1 (the MRU) must be rejected *)
  check_bool "MRU eviction rejected" true
    (match
       Invariant.Lru_monitor.note mon ~mask:full ~kind:Access.Read 32
         (Sassoc.Miss { way = 1; evicted_line = Some 1 })
     with
    | Error _ -> true
    | Ok () -> false)

(* --- scenario format --- *)

let test_scenario_roundtrip () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 50 do
    let sc = Gen.scenario rng in
    let sc' = Scenario.of_string (Scenario.to_string sc) in
    check_bool "textual round-trip" true (Scenario.equal sc sc')
  done

let test_scenario_rejects_garbage () =
  check_bool "bad header" true
    (try ignore (Scenario.of_string "nonsense\n"); false
     with Invalid_argument _ -> true);
  check_bool "bad event" true
    (try
       ignore
         (Scenario.of_string
            "colcache-scenario v1\n\
             cache line_size=16 sets=2 ways=2 policy=lru classify=false\n\
             vm page_size=64 tlb_entries=2\n\
             frobnicate");
       false
     with Invalid_argument _ -> true)

(* --- determinism: same seed, same verdicts --- *)

let test_soak_deterministic () =
  let run () =
    match Diff.soak ~seed:7 ~iters:40 () with
    | Ok s -> (s.Diff.events, s.Diff.accesses, s.Diff.policies)
    | Error _ -> Alcotest.fail "seed 7 diverged"
  in
  check_bool "two runs identical" true (run () = run ())

let suites =
  [
    ( "check.differential",
      [
        Alcotest.test_case "fixed-seed soak agrees" `Quick test_soak_agrees;
        Alcotest.test_case "covers all policies" `Quick test_soak_covers_policies;
        Alcotest.test_case "covers geometry extremes" `Quick test_soak_covers_geometries;
        Alcotest.test_case "covers the batched fast path" `Quick test_soak_covers_fast_path;
        Alcotest.test_case "covers the machine batched replay" `Quick
          test_soak_covers_machine;
        Alcotest.test_case "covers traffic-shaped generators" `Quick
          test_soak_covers_traffic;
        Alcotest.test_case "covers the wcet static-bound check" `Quick
          test_soak_covers_wcet;
        Alcotest.test_case "covers the sampled estimator" `Quick
          test_soak_covers_sampled;
        Alcotest.test_case "covers the sharded-vs-serial differential" `Quick
          test_soak_covers_shard;
        Alcotest.test_case "covers the event-core differential" `Quick
          test_soak_covers_event;
        Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
      ] );
    ( "check.mutation",
      [
        Alcotest.test_case "catches MRU-for-LRU" `Quick test_mutation_mru;
        Alcotest.test_case "catches mask ignoring" `Quick test_mutation_ignore_mask;
        Alcotest.test_case "catches writeback miscount" `Quick test_mutation_writeback;
        Alcotest.test_case "catches fast-path batching bug" `Quick test_mutation_fast_path;
        Alcotest.test_case "catches machine batched-replay bug" `Quick
          test_mutation_machine_fast_path;
        Alcotest.test_case "catches generator sampler bug" `Quick
          test_mutation_gen;
        Alcotest.test_case "catches wcet unsound-join bug" `Quick
          test_mutation_wcet;
        Alcotest.test_case "catches sampled-estimator rescale bug" `Quick
          test_mutation_sample;
        Alcotest.test_case "catches event-core MSHR-merge bug" `Quick
          test_mutation_event;
        Alcotest.test_case "catches sharded merge bug" `Quick
          test_mutation_shard;
      ] );
    ( "check.oracle",
      [
        Alcotest.test_case "hand-computed LRU" `Quick test_oracle_direct_lru;
        Alcotest.test_case "rejects empty mask" `Quick test_oracle_rejects_empty_mask;
      ] );
    ( "check.invariants",
      [
        Alcotest.test_case "victim in mask" `Quick test_invariant_victim_in_mask;
        Alcotest.test_case "stats conservation" `Quick test_invariant_stats_conserved;
        Alcotest.test_case "occupancy within masks" `Quick test_invariant_occupancy;
        Alcotest.test_case "LRU recency monitor" `Quick test_invariant_lru_monitor;
      ] );
    ( "check.scenario",
      [
        Alcotest.test_case "round-trip" `Quick test_scenario_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_scenario_rejects_garbage;
      ] );
  ]
