(* Tests for the set-sharded parallel stack-distance sweeps and the
   incremental sliding-window MRC engine: byte-identical jobs-invariance of
   the exact and sampled parallel engines (pinned on a real workload and
   property-tested over random traces and geometries), the window-semantics
   properties of [Stack_dist.Windowed], every [Invalid_argument] rejection
   of the new knobs, and the two new experiment modules. *)

module Access = Memtrace.Access
module Packed = Memtrace.Packed
module Stack_dist = Cache.Stack_dist
module Sampled = Cache.Stack_dist.Sampled
module Windowed = Cache.Stack_dist.Windowed
module Sweep = Colcache.Sweep
module Pipeline = Colcache.Pipeline
module Experiments = Colcache.Experiments
module Run_stats = Machine.Run_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* A real workload trace, heavy enough to cross chunk boundaries in the
   sharded streaming loop many times over. *)
let lz77_packed =
  lazy (Packed.of_trace (Workloads.Lz77.trace ~seed:3 ~input_len:4096 () ~base:0))

let engines_agree label a b =
  check_int (label ^ ": accesses") (Stack_dist.accesses a)
    (Stack_dist.accesses b);
  check_int (label ^ ": cold misses") (Stack_dist.cold_misses a)
    (Stack_dist.cold_misses b);
  check_int (label ^ ": overflows") (Stack_dist.overflows a)
    (Stack_dist.overflows b);
  check_int (label ^ ": distinct lines") (Stack_dist.distinct_lines a)
    (Stack_dist.distinct_lines b);
  check_bool (label ^ ": histogram") true
    (Stack_dist.histogram a = Stack_dist.histogram b);
  check_bool (label ^ ": miss curve") true
    (Stack_dist.miss_curve a = Stack_dist.miss_curve b);
  for ways = 1 to Stack_dist.max_ways a do
    check_int
      (Printf.sprintf "%s: misses@%d" label ways)
      (Stack_dist.misses a ~ways) (Stack_dist.misses b ~ways);
    check_int
      (Printf.sprintf "%s: evictions@%d" label ways)
      (Stack_dist.evictions a ~ways)
      (Stack_dist.evictions b ~ways);
    check_int
      (Printf.sprintf "%s: writebacks@%d" label ways)
      (Stack_dist.writebacks a ~ways)
      (Stack_dist.writebacks b ~ways)
  done

(* --- exact engine: jobs-invariance, pinned --- *)

let test_parallel_matches_serial () =
  let packed = Lazy.force lz77_packed in
  let serial = Stack_dist.create ~line_size:16 ~sets:64 ~max_ways:8 () in
  Stack_dist.access_packed serial packed;
  List.iter
    (fun jobs ->
      let per_shard = Array.make jobs 0 in
      let merged =
        Stack_dist.of_packed_parallel
          ~on_shard:(fun ~shard ~accesses -> per_shard.(shard) <- accesses)
          ~jobs ~line_size:16 ~sets:64 ~max_ways:8 packed
      in
      engines_agree (Printf.sprintf "jobs=%d" jobs) serial merged;
      check_int
        (Printf.sprintf "jobs=%d: shard accesses sum to the total" jobs)
        (Stack_dist.accesses serial)
        (Array.fold_left ( + ) 0 per_shard);
      if jobs > 1 then
        Array.iteri
          (fun s n ->
            check_bool
              (Printf.sprintf "jobs=%d: shard %d strictly partial" jobs s)
              true
              (n < Stack_dist.accesses serial))
          per_shard)
    [ 1; 2; 3; 4; 8 ]

let test_parallel_with_translate () =
  (* a page-granular frame placement must shard identically: translation
     happens once, before the set filter, on both paths *)
  let translate a = a lxor 0x4000 in
  let packed = Lazy.force lz77_packed in
  let serial =
    Stack_dist.create ~translate ~line_size:16 ~sets:32 ~max_ways:4 ()
  in
  Stack_dist.access_packed serial packed;
  let merged =
    Stack_dist.of_packed_parallel ~translate ~jobs:4 ~line_size:16 ~sets:32
      ~max_ways:4 packed
  in
  engines_agree "translated jobs=4" serial merged

(* --- sampled engine: jobs-invariance, pinned --- *)

let test_sampled_parallel_matches_serial () =
  let packed = Lazy.force lz77_packed in
  let mk () =
    Sampled.create ~seed:7 ~rate:0.4 ~line_size:16 ~sets:64 ~max_ways:8 ()
  in
  let serial = mk () in
  Sampled.access_packed serial packed;
  List.iter
    (fun jobs ->
      let merged =
        Sampled.of_packed_parallel ~seed:7 ~jobs ~rate:0.4 ~line_size:16
          ~sets:64 ~max_ways:8 packed
      in
      let label = Printf.sprintf "sampled jobs=%d" jobs in
      check_int (label ^ ": selected sets") (Sampled.selected_sets serial)
        (Sampled.selected_sets merged);
      check_int (label ^ ": accesses offered") (Sampled.accesses serial)
        (Sampled.accesses merged);
      check_int (label ^ ": sampled accesses")
        (Sampled.sampled_accesses serial)
        (Sampled.sampled_accesses merged);
      check_int
        (label ^ ": distinct sampled lines")
        (Sampled.distinct_sampled_lines serial)
        (Sampled.distinct_sampled_lines merged);
      check_bool (label ^ ": raw miss curve") true
        (Sampled.raw_miss_curve serial = Sampled.raw_miss_curve merged);
      check_bool (label ^ ": mrc_est") true
        (Sampled.mrc_est serial = Sampled.mrc_est merged))
    [ 1; 2; 4 ]

(* --- property: jobs-invariance over random traces and geometries --- *)

let qcheck_jobs_invariance =
  QCheck.Test.make ~name:"sharded merge is byte-identical for any jobs"
    ~count:100
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 200) (int_bound 0xFFFF))
        (int_bound 2)
        (int_bound 1000))
    (fun (addrs, sets_pow, jobs_seed) ->
      QCheck.assume (addrs <> []);
      let sets = 4 lsl sets_pow (* 4, 8 or 16 *) in
      let jobs = 1 + (jobs_seed mod sets) in
      let trace =
        Memtrace.Trace.of_list
          (List.mapi
             (fun i a ->
               let kind = if i mod 3 = 0 then Access.Write else Access.Read in
               Access.make ~kind (a * 4))
             addrs)
      in
      let packed = Packed.of_trace trace in
      let serial = Stack_dist.create ~line_size:8 ~sets ~max_ways:4 () in
      Stack_dist.access_packed serial packed;
      let merged =
        Stack_dist.of_packed_parallel ~jobs ~line_size:8 ~sets ~max_ways:4
          packed
      in
      Stack_dist.miss_curve serial = Stack_dist.miss_curve merged
      && Stack_dist.histogram serial = Stack_dist.histogram merged
      && Stack_dist.cold_misses serial = Stack_dist.cold_misses merged
      && List.for_all
           (fun ways ->
             Stack_dist.evictions serial ~ways
             = Stack_dist.evictions merged ~ways
             && Stack_dist.writebacks serial ~ways
                = Stack_dist.writebacks merged ~ways)
           [ 1; 2; 3; 4 ])

(* --- windowed engine: window semantics --- *)

(* While the window covers the whole trace, nothing has retired and every
   reading must equal the one-shot engine's exactly. *)
let qcheck_window_covers_trace =
  QCheck.Test.make ~name:"window >= trace length equals the one-shot engine"
    ~count:100
    QCheck.(
      pair (list_of_size Gen.(int_range 1 150) (int_bound 0xFFF)) (int_bound 3))
    (fun (addrs, epochs_pow) ->
      QCheck.assume (addrs <> []);
      let epochs = 1 lsl epochs_pow in
      let n = List.length addrs in
      (* the smallest multiple of [epochs] at or above [n] *)
      let window = (n + epochs - 1) / epochs * epochs in
      let one_shot = Stack_dist.create ~line_size:8 ~sets:8 ~max_ways:4 () in
      let windowed =
        Windowed.create ~window ~epochs ~line_size:8 ~sets:8 ~max_ways:4 ()
      in
      List.iteri
        (fun i a ->
          let kind = if i mod 4 = 0 then Access.Write else Access.Read in
          Stack_dist.access one_shot ~kind (a * 4);
          Windowed.observe windowed ~kind (a * 4))
        addrs;
      Windowed.retired_epochs windowed = 0
      && Windowed.accesses_in_window windowed = Stack_dist.accesses one_shot
      && Windowed.miss_curve_now windowed = Stack_dist.miss_curve one_shot
      && Windowed.mrc_now windowed = Stack_dist.mrc one_shot)

(* Once the stream outruns the window, retirement must actually drop counts
   and never resurrect them: the readings always cover exactly the live
   epochs plus the partial one, bounded by [window + epoch_length - 1]. *)
let qcheck_window_retirement =
  QCheck.Test.make ~name:"retirement drops whole epochs and never resurrects"
    ~count:100
    QCheck.(
      pair (list_of_size Gen.(int_range 50 400) (int_bound 0xFFF)) (int_bound 2))
    (fun (addrs, epochs_pow) ->
      QCheck.assume (List.length addrs >= 50);
      let epochs = 2 lsl epochs_pow (* 2, 4 or 8 *) in
      let epoch_len = 4 in
      let window = epochs * epoch_len in
      let windowed =
        Windowed.create ~window ~epochs ~line_size:8 ~sets:4 ~max_ways:2 ()
      in
      let total = ref 0 in
      let ok = ref true in
      List.iter
        (fun a ->
          Windowed.observe windowed ~kind:Access.Read (a * 4);
          incr total;
          let covered = Windowed.accesses_in_window windowed in
          let retired = Windowed.retired_epochs windowed in
          (* conservation: every access is either retired or still covered *)
          ok :=
            !ok
            && covered + (retired * epoch_len) = !total
            && covered <= window + epoch_len - 1
            (* a 0-way cache misses everything in the window, nothing more:
               a retired epoch's counts must not leak back in *)
            && (Windowed.miss_curve_now windowed).(0) = covered)
        addrs;
      !ok
      && Windowed.retired_epochs windowed
         = max 0 ((List.length addrs / epoch_len) - epochs))

(* --- rejection of every new knob, at the library level --- *)

let test_stack_dist_rejections () =
  let packed = Lazy.force lz77_packed in
  check_bool "jobs = 0" true
    (raises (fun () ->
         Stack_dist.of_packed_parallel ~jobs:0 ~line_size:16 ~sets:64
           ~max_ways:8 packed));
  check_bool "jobs > sets" true
    (raises (fun () ->
         Stack_dist.of_packed_parallel ~jobs:65 ~line_size:16 ~sets:64
           ~max_ways:8 packed));
  let mk () = Stack_dist.create ~line_size:16 ~sets:8 ~max_ways:2 () in
  check_bool "sharded feed: shard out of range" true
    (raises (fun () ->
         Stack_dist.access_packed_sharded (mk ()) ~shards:2 ~shard:2 packed));
  check_bool "sharded feed: shards > sets" true
    (raises (fun () ->
         Stack_dist.access_packed_sharded (mk ()) ~shards:9 ~shard:0 packed));
  check_bool "merge: geometry mismatch" true
    (raises (fun () ->
         let other = Stack_dist.create ~line_size:16 ~sets:4 ~max_ways:2 () in
         Stack_dist.merge_into (mk ()) other));
  check_bool "merge: overlapping set ownership" true
    (raises (fun () ->
         let a = mk () and b = mk () in
         Stack_dist.access a ~kind:Access.Read 0;
         Stack_dist.access b ~kind:Access.Read 0;
         Stack_dist.merge_into a b))

let test_sampled_rejections () =
  let packed = Lazy.force lz77_packed in
  check_bool "sampled parallel: jobs = 0" true
    (raises (fun () ->
         Sampled.of_packed_parallel ~jobs:0 ~rate:0.5 ~line_size:16 ~sets:64
           ~max_ways:8 packed));
  check_bool "sampled sharded feed rejects a budget engine" true
    (raises (fun () ->
         let s =
           Sampled.create ~budget:64 ~rate:0.5 ~line_size:16 ~sets:64
             ~max_ways:8 ()
         in
         Sampled.access_packed_sharded s ~shards:2 ~shard:0 packed))

let test_windowed_rejections () =
  let mk ~window ~epochs () =
    Windowed.create ~window ~epochs ~line_size:16 ~sets:8 ~max_ways:2 ()
  in
  check_bool "window = 0" true (raises (mk ~window:0 ~epochs:1));
  check_bool "epochs = 0" true (raises (mk ~window:8 ~epochs:0));
  check_bool "window not a multiple of epochs" true
    (raises (mk ~window:10 ~epochs:4))

let mpeg_pipeline =
  lazy
    (Pipeline.make ~init:Workloads.Mpeg.init
       ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       Workloads.Mpeg.program)

let test_sweep_rejections () =
  let t = Lazy.force mpeg_pipeline in
  let packed = Pipeline.packed_trace_of t ~proc:"plus" in
  let go jobs =
    Sweep.standard_parallel ~jobs ~cache:t.Pipeline.cache
      ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
      ~tlb_entries:t.Pipeline.tlb_entries [ packed ]
  in
  check_bool "sweep: jobs = 0" true (raises (fun () -> go 0));
  check_bool "sweep: jobs > sets" true (raises (fun () -> go 1024));
  check_bool "best_split: jobs = 0" true
    (raises (fun () ->
         Pipeline.best_split ~jobs:0 t ~proc:"plus"
           ~meth:Pipeline.Profile_based));
  check_bool "best_split: jobs > sets" true
    (raises (fun () ->
         Pipeline.best_split ~jobs:1024 t ~proc:"plus"
           ~meth:Pipeline.Profile_based))

(* --- sweep evaluators: parallel equals serial, field for field --- *)

let run_stats_equal label (a : Run_stats.t) (b : Run_stats.t) =
  check_int (label ^ ": instructions") a.instructions b.instructions;
  check_int (label ^ ": cycles") a.cycles b.cycles;
  check_int (label ^ ": memory accesses") a.memory_accesses b.memory_accesses;
  check_int
    (label ^ ": scratchpad accesses")
    a.scratchpad_accesses b.scratchpad_accesses;
  check_int (label ^ ": tlb hits") a.tlb_hits b.tlb_hits;
  check_int (label ^ ": tlb misses") a.tlb_misses b.tlb_misses;
  check_bool (label ^ ": cache stats") true (a.cache = b.cache);
  check_bool (label ^ ": request latencies") true
    (Machine.Latency.equal a.requests b.requests)

let test_sweep_standard_parallel () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let packed = Pipeline.packed_trace_of t ~proc in
      let serial =
        match
          Sweep.standard ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries [ packed ]
        with
        | Some s -> s
        | None -> Alcotest.fail "standard sweep infeasible"
      in
      List.iter
        (fun jobs ->
          match
            Sweep.standard_parallel ~jobs ~cache:t.Pipeline.cache
              ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
              ~tlb_entries:t.Pipeline.tlb_entries [ packed ]
          with
          | Some p ->
              run_stats_equal
                (Printf.sprintf "%s jobs=%d" proc jobs)
                serial p
          | None -> Alcotest.fail (proc ^ ": parallel sweep infeasible"))
        [ 1; 2; 4 ])
    Workloads.Mpeg.routines

let copy_in_of t ~proc =
  let reads = Hashtbl.create 16 and writes = Hashtbl.create 16 in
  Memtrace.Trace.iter
    (fun a ->
      match a.Access.var with
      | None -> ()
      | Some v -> (
          match a.Access.kind with
          | Access.Read | Access.Ifetch -> Hashtbl.replace reads v ()
          | Access.Write -> Hashtbl.replace writes v ()))
    (Pipeline.trace_of t ~proc);
  Hashtbl.fold
    (fun v () acc -> if Hashtbl.mem writes v then v :: acc else acc)
    reads []

let test_sweep_partitioned_parallel () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let copy_in = copy_in_of t ~proc in
      let packed = Pipeline.packed_trace_of t ~proc in
      for scratchpad_columns = 0 to 3 do
        let part =
          Pipeline.partition t ~proc ~scratchpad_columns
            ~meth:Pipeline.Profile_based
        in
        let serial =
          Sweep.partitioned ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries ~part ~copy_in [ packed ]
        in
        let parallel =
          Sweep.partitioned_parallel ~jobs:2 ~cache:t.Pipeline.cache
            ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries ~part ~copy_in [ packed ]
        in
        let label = Printf.sprintf "%s/scratch=%d" proc scratchpad_columns in
        match (serial, parallel) with
        | None, None -> ()
        | Some s, Some p -> run_stats_equal label s p
        | Some _, None -> Alcotest.fail (label ^ ": parallel None, serial Some")
        | None, Some _ -> Alcotest.fail (label ^ ": parallel Some, serial None")
      done)
    Workloads.Mpeg.routines

let test_sweep_sampled_parallel () =
  let t = Lazy.force mpeg_pipeline in
  List.iter
    (fun proc ->
      let packed = Pipeline.packed_trace_of t ~proc in
      let serial =
        Sweep.standard_sampled ~rate:0.5 ~cache:t.Pipeline.cache
          ~timing:Machine.Timing.default ~page_size:t.Pipeline.page_size
          ~tlb_entries:t.Pipeline.tlb_entries [ packed ]
      in
      let parallel =
        Sweep.standard_sampled_parallel ~jobs:2 ~rate:0.5
          ~cache:t.Pipeline.cache ~timing:Machine.Timing.default
          ~page_size:t.Pipeline.page_size ~tlb_entries:t.Pipeline.tlb_entries
          [ packed ]
      in
      match (serial, parallel) with
      | None, None -> ()
      | Some s, Some p ->
          check_bool (proc ^ ": sampled parallel equals serial") true (s = p)
      | _ -> Alcotest.fail (proc ^ ": feasibility disagrees"))
    Workloads.Mpeg.routines

let test_best_split_jobs_invariant () =
  let t = Lazy.force mpeg_pipeline in
  let p1, s1 =
    Pipeline.best_split t ~proc:"plus" ~meth:Pipeline.Profile_based
  in
  let p2, s2 =
    Pipeline.best_split ~jobs:2 t ~proc:"plus" ~meth:Pipeline.Profile_based
  in
  check_int "same split point" p1 p2;
  check_int "same cycles" s1.Run_stats.cycles s2.Run_stats.cycles

(* --- the incremental allocator wrapper --- *)

let test_incremental_basics () =
  let module Inc = Layout.Mrc_alloc.Incremental in
  let inc =
    Inc.create ~window:64 ~epochs:4 ~line_size:16 ~sets:8 ~max_ways:4
      ~columns:4 [ "a"; "b" ]
  in
  (* drive tenant "a" over a 3-line working set, "b" over 1 line: the
     windowed curves must steer the greedy split toward "a" *)
  for i = 0 to 63 do
    Inc.observe inc ~tenant:"a" ~kind:Access.Read (16 * (i mod 3));
    Inc.observe inc ~tenant:"b" ~kind:Access.Read 0x8000
  done;
  check_int "a's window covers its accesses" 64
    (Inc.accesses_in_window inc ~tenant:"a");
  let alloc = Inc.allocate_now inc in
  check_int "whole budget handed out" 4
    (List.fold_left (fun acc (_, c) -> acc + c) 0 alloc);
  check_bool "busy tenant gets more columns" true
    (List.assoc "a" alloc > List.assoc "b" alloc);
  check_bool "unknown tenant" true
    (raises (fun () -> Inc.observe inc ~tenant:"zzz" ~kind:Access.Read 0));
  check_bool "empty tenant list" true
    (raises (fun () ->
         Inc.create ~window:64 ~epochs:4 ~line_size:16 ~sets:8 ~max_ways:4
           ~columns:4 []));
  check_bool "duplicate tenants" true
    (raises (fun () ->
         Inc.create ~window:64 ~epochs:4 ~line_size:16 ~sets:8 ~max_ways:4
           ~columns:4 [ "a"; "a" ]));
  check_bool "more tenants than columns" true
    (raises (fun () ->
         Inc.create ~window:64 ~epochs:4 ~line_size:16 ~sets:8 ~max_ways:4
           ~columns:1 [ "a"; "b" ]))

(* --- the experiment modules the docs cite --- *)

let test_experiment_mrc_scaling () =
  let r = Experiments.Mrc_scaling.run ~jobs_list:[ 1; 2; 4 ] () in
  check_int "three rows" 3 (List.length r.Experiments.Mrc_scaling.rows);
  List.iter
    (fun row ->
      check_bool
        (Printf.sprintf "jobs=%d merged identical"
           row.Experiments.Mrc_scaling.jobs)
        true row.Experiments.Mrc_scaling.identical;
      check_int
        (Printf.sprintf "jobs=%d shard accesses sum to the total"
           row.Experiments.Mrc_scaling.jobs)
        r.Experiments.Mrc_scaling.total_accesses
        (List.fold_left ( + ) 0 row.Experiments.Mrc_scaling.shard_accesses))
    r.Experiments.Mrc_scaling.rows

let test_experiment_windowed_mrc () =
  let r = Experiments.Windowed_mrc.run () in
  check_bool "windowed tracking beats the static split" true
    r.Experiments.Windowed_mrc.windowed_wins;
  check_bool "misses actually dropped" true
    (r.Experiments.Windowed_mrc.windowed_total
    < r.Experiments.Windowed_mrc.static_total);
  List.iter
    (fun (tenant, retired) ->
      check_bool (tenant ^ " retired epochs") true (retired > 0))
    r.Experiments.Windowed_mrc.retired

let suites =
  [
    ( "shard.parallel",
      [
        Alcotest.test_case "exact parallel = serial (pinned)" `Quick
          test_parallel_matches_serial;
        Alcotest.test_case "translated parallel = serial" `Quick
          test_parallel_with_translate;
        Alcotest.test_case "sampled parallel = serial (pinned)" `Quick
          test_sampled_parallel_matches_serial;
        QCheck_alcotest.to_alcotest qcheck_jobs_invariance;
      ] );
    ( "shard.windowed",
      [
        QCheck_alcotest.to_alcotest qcheck_window_covers_trace;
        QCheck_alcotest.to_alcotest qcheck_window_retirement;
      ] );
    ( "shard.rejections",
      [
        Alcotest.test_case "stack_dist knobs" `Quick test_stack_dist_rejections;
        Alcotest.test_case "sampled knobs" `Quick test_sampled_rejections;
        Alcotest.test_case "windowed knobs" `Quick test_windowed_rejections;
        Alcotest.test_case "sweep + best_split knobs" `Quick
          test_sweep_rejections;
      ] );
    ( "shard.sweep",
      [
        Alcotest.test_case "standard_parallel = standard" `Quick
          test_sweep_standard_parallel;
        Alcotest.test_case "partitioned_parallel = partitioned" `Quick
          test_sweep_partitioned_parallel;
        Alcotest.test_case "sampled parallel sweep = serial" `Quick
          test_sweep_sampled_parallel;
        Alcotest.test_case "best_split jobs-invariant" `Quick
          test_best_split_jobs_invariant;
      ] );
    ( "shard.incremental",
      [
        Alcotest.test_case "incremental allocator basics" `Quick
          test_incremental_basics;
        Alcotest.test_case "mrc scaling experiment" `Quick
          test_experiment_mrc_scaling;
        Alcotest.test_case "windowed mrc experiment" `Quick
          test_experiment_windowed_mrc;
      ] );
  ]
