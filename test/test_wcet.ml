(* Tests for the abstract-interpretation cache analysis
   (Ir.Cache_analysis), the WCET-aware column allocator
   (Layout.Wcet_alloc) and the soundness of the static miss bounds
   against real replays. *)

open Ir.Build
module Ast = Ir.Ast
module Interp = Ir.Interp
module CA = Ir.Cache_analysis
module Sassoc = Cache.Sassoc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let geom ~line_size ~sets ~ways = { CA.line_size; sets; ways }

(* Replay the interpreter's trace through the real LRU simulator with a
   full mask — the configuration the analysis bounds. *)
let observed_misses ?init program ~proc (g : CA.geometry) =
  let layout = Interp.sequential_layout program in
  let trace = Interp.trace_of ?init program ~proc ~layout in
  let cache =
    Sassoc.create
      (Sassoc.config ~line_size:g.line_size
         ~size_bytes:Stdlib.(g.line_size * g.sets * g.ways)
         ~ways:g.ways ())
  in
  Sassoc.access_trace cache trace;
  (Sassoc.stats cache).Cache.Stats.misses

let bound_exn t =
  match t.CA.wcet_misses with
  | Some b -> b
  | None -> Alcotest.fail "expected a finite miss bound"

let classifications t = List.map (fun s -> s.CA.classification) t.CA.sites

(* --- hand-checked classifications ---------------------------------------- *)

(* for %i = 0..16 { s := s + a[%i] }: a spans 4 lines (one per set), s
   one more in set 0; per-set footprint <= 2 = ways, so everything fits:
   the a sites and the s read are persistent (bound 4 + 1), and the s
   write is always-hit (the read earlier in the iteration loads the
   line), so the bound is 5 = the 5 observed cold misses. *)
let test_persistent_sum () =
  let p =
    program
      ~vars:[ array "a" ~elems:16 (); scalar "s" () ]
      [ proc "main" [ for_ "i" (i 0) (i 16) [ set "s" (s "s" + ld "a" (r "i")) ] ] ]
  in
  let g = geom ~line_size:16 ~sets:4 ~ways:2 in
  let t = CA.analyze g p ~proc:"main" in
  check_int "wcet bound" 5 (bound_exn t);
  check_int "observed" 5 (observed_misses p ~proc:"main" g);
  check_bool "all persistent or always-hit" true
    (List.for_all
       (fun c -> c = CA.Persistent || c = CA.Always_hit)
       (classifications t));
  check_int "accesses" 48 (Option.get t.CA.accesses)

(* Back-to-back reads of the same element: the second is always-hit. *)
let test_always_hit_reload () =
  let p =
    program
      ~vars:[ array "a" ~elems:4 (); scalar "s" () ]
      [
        proc "main"
          [ set "s" (ld "a" (i 0)); set "s" (s "s" + ld "a" (i 0)) ];
      ]
  in
  let g = geom ~line_size:16 ~sets:2 ~ways:2 in
  let t = CA.analyze g p ~proc:"main" in
  let a_sites =
    List.filter (fun st -> st.CA.var = "a") t.CA.sites
  in
  check_int "two a sites" 2 (List.length a_sites);
  (match a_sites with
  | [ first; second ] ->
      check_bool "first not always-hit" true
        (first.CA.classification <> CA.Always_hit);
      check_bool "second always-hit" true
        (second.CA.classification = CA.Always_hit);
      check_int "second bound 0" 0 (Option.get second.CA.miss_bound)
  | _ -> assert false);
  check_bool "bound >= observed" true
    (bound_exn t >= observed_misses p ~proc:"main" g)

(* Two arrays, each one full set-sized stride apart, fighting over a
   single way: nothing fits, every classified bound falls back to the
   execution count, and the bound still covers the thrashing replay. *)
let test_thrash_exec_bound () =
  let p =
    program
      ~vars:[ array "a" ~elems:4 (); array "b" ~elems:4 (); scalar "s" () ]
      [
        proc "main"
          [
            for_ "t" (i 0) (i 8)
              [ set "s" (ld "a" (i 0) + ld "b" (i 0)) ];
          ];
      ]
  in
  let g = geom ~line_size:16 ~sets:1 ~ways:1 in
  let t = CA.analyze g p ~proc:"main" in
  let observed = observed_misses p ~proc:"main" g in
  check_bool "bound >= observed" true (bound_exn t >= observed);
  check_bool "thrashing really happens" true (observed >= 16)

(* A data-dependently terminating While is still boundable when its
   working set provably fits: persistence against the procedure scope. *)
let test_while_persistent_bound () =
  let p =
    program
      ~vars:[ scalar "c" (); scalar "s" () ]
      [
        proc "main"
          [
            set "c" (i 0);
            while_
              (lt (s "c") (i 10))
              ~est_iterations:10
              [ set "s" (s "s" + i 1); set "c" (s "c" + i 1) ];
          ];
      ]
  in
  let g = geom ~line_size:16 ~sets:2 ~ways:2 in
  let t = CA.analyze g p ~proc:"main" in
  check_bool "accesses unbounded" true (t.CA.accesses = None);
  let b = bound_exn t in
  check_bool "finite miss bound" true (b >= 1);
  check_bool "bound >= observed" true (b >= observed_misses p ~proc:"main" g)

(* With ways = 0 (no columns at all) everything is always-miss and the
   bound equals the access count. *)
let test_zero_ways_always_miss () =
  let p =
    program
      ~vars:[ array "a" ~elems:8 (); scalar "s" () ]
      [ proc "main" [ for_ "i" (i 0) (i 8) [ set "s" (ld "a" (r "i")) ] ] ]
  in
  let t = CA.analyze (geom ~line_size:16 ~sets:4 ~ways:0) p ~proc:"main" in
  check_bool "all always-miss" true
    (List.for_all (fun c -> c = CA.Always_miss) (classifications t));
  check_int "bound = accesses" (Option.get t.CA.accesses) (bound_exn t)

(* Disjoint per-variable masks isolate partitions; overlapping unequal
   masks void must-claims for the variables involved. *)
let test_masks_partition () =
  let p =
    program
      ~vars:[ array "a" ~elems:4 (); array "b" ~elems:4 (); scalar "s" () ]
      [
        proc "main"
          [
            set "s" (ld "a" (i 0) + ld "b" (i 0));
            set "s" (ld "a" (i 0) + ld "b" (i 0));
          ];
      ]
  in
  let g = geom ~line_size:16 ~sets:1 ~ways:3 in
  (* Exclusive columns: both second reads are hits despite one-way
     groups in a shared set. *)
  let t =
    CA.analyze g p ~proc:"main"
      ~masks:[ ("a", 0b001); ("b", 0b010); ("s", 0b100) ]
  in
  let second_reads =
    List.filter (fun st -> not st.CA.write) t.CA.sites
    |> List.filteri (fun idx _ -> idx >= 2)
  in
  check_int "two second reads" 2 (List.length second_reads);
  List.iter
    (fun st ->
      check_bool "second read always-hit" true
        (st.CA.classification = CA.Always_hit))
    second_reads;
  (* Overlapping unequal masks taint the variables involved: no
     always-hit claims for a or b, while untouched s keeps its own
     partition. *)
  let t2 =
    CA.analyze g p ~proc:"main"
      ~masks:[ ("a", 0b011); ("b", 0b010); ("s", 0b100) ]
  in
  check_bool "no always-hit under overlap" true
    (List.for_all
       (fun st -> st.CA.classification <> CA.Always_hit)
       (List.filter (fun st -> st.CA.var <> "s") t2.CA.sites))

(* --- Static_analysis exactness against the interpreter ------------------- *)

(* On programs with only constant loop bounds and no branches, the
   estimated per-variable access counts must equal what the interpreter
   actually emits. *)
let test_static_analysis_exact_counts () =
  let p =
    program
      ~vars:
        [ array "a" ~elems:12 (); array "b" ~elems:6 (); scalar "acc" () ]
      [
        proc "main"
          [
            set "acc" (i 0);
            for_ "i" (i 0) (i 6)
              [
                st "b" (r "i") (ld "a" (r "i" * i 2));
                for_ "j" (i 2) (i 5) [ set "acc" (s "acc" + ld "a" (r "j")) ];
              ];
          ];
      ]
  in
  let layout = Interp.sequential_layout p in
  let packed = Interp.packed_trace_of p ~proc:"main" ~layout in
  let measured = Hashtbl.create 8 in
  Memtrace.Packed.iter
    (fun (a : Memtrace.Access.t) ->
      match a.var with
      | Some name ->
          Hashtbl.replace measured name
            Stdlib.(1 + Option.value (Hashtbl.find_opt measured name) ~default:0)
      | None -> ())
    packed;
  let summaries = Ir.Static_analysis.analyze p ~proc:"main" in
  List.iter
    (fun (name, summary) ->
      let est = int_of_float summary.Profile.Lifetime.accesses in
      check_int (Printf.sprintf "count for %s" name)
        (Option.value (Hashtbl.find_opt measured name) ~default:0)
        est)
    summaries;
  check_int "every measured var estimated" (Hashtbl.length measured)
    (List.length summaries)

(* The default trip count is threaded, not hard-coded: a data-dependent
   loop bound weighs as [default_trip_count]. *)
let test_default_trip_count_threaded () =
  let p =
    program
      ~vars:[ scalar "n" (); array "a" ~elems:64 (); scalar "s" () ]
      [
        proc "main"
          [ for_ "i" (i 0) (s "n") [ set "s" (s "s" + ld "a" (r "i")) ] ];
      ]
  in
  let count trip =
    let summaries =
      Ir.Static_analysis.analyze ~default_trip_count:trip p ~proc:"main"
    in
    int_of_float (List.assoc "a" summaries).Profile.Lifetime.accesses
  in
  check_int "default 16" 16 (count 16);
  check_int "calibrated 3" 3 (count 3);
  let c3 = Ir.Static_analysis.cost_of_proc ~default_trip_count:3 p ~proc:"main" in
  let c16 = Ir.Static_analysis.cost_of_proc p ~proc:"main" in
  check_bool "cost grows with trip default" true (c3 < c16)

(* --- Wcet_alloc ----------------------------------------------------------- *)

let test_wcet_alloc_min_max () =
  (* Task x is catastrophic without 3 columns; y needs 2; z is cheap
     everywhere. 4 columns: min-max must starve z, not x. *)
  let curves =
    [
      ("x", [| 1000.; 1000.; 1000.; 10.; 10. |]);
      ("y", [| 400.; 400.; 20.; 20.; 20. |]);
      ("z", [| 30.; 25.; 24.; 23.; 22. |]);
    ]
  in
  let alloc = Layout.Wcet_alloc.allocate ~columns:6 curves in
  check_int "x columns" 3 (List.assoc "x" alloc);
  check_int "y columns" 2 (List.assoc "y" alloc);
  check_int "z columns" 1 (List.assoc "z" alloc);
  let mb = Layout.Wcet_alloc.max_bound curves alloc in
  check_bool "max bound is z's" true (mb = 25.);
  (* Masks are disjoint and contiguous. *)
  let masks = Layout.Wcet_alloc.to_masks alloc in
  let all =
    List.fold_left
      (fun acc (_, m) ->
        check_int "disjoint" 0 (Cache.Bitmask.count (Cache.Bitmask.inter acc m));
        Cache.Bitmask.union acc m)
      Cache.Bitmask.empty masks
  in
  check_int "six columns total" 6 (Cache.Bitmask.count all)

let test_wcet_alloc_weighted_sum () =
  let curves =
    [ ("x", [| 100.; 60.; 30.; 10. |]); ("y", [| 100.; 90.; 85.; 84. |]) ]
  in
  let alloc =
    Layout.Wcet_alloc.allocate
      ~objective:(Layout.Wcet_alloc.Weighted_sum [])
      ~columns:4 curves
  in
  (* Marginal gains favour x throughout. *)
  check_int "x columns" 3 (List.assoc "x" alloc);
  check_int "y columns" 1 (List.assoc "y" alloc)

(* --- the WCET partitioning figure ----------------------------------------- *)

let test_wcet_partition_figure () =
  let t = Colcache.Experiments.Wcet_partition.run () in
  let max_of config =
    List.assoc config t.Colcache.Experiments.Wcet_partition.max_bounds
  in
  check_bool "bounds sound vs replay" true
    t.Colcache.Experiments.Wcet_partition.sound;
  check_bool "wcet max bound finite" true (Float.is_finite (max_of "wcet"));
  check_bool "wcet max bound strictly beats equal split" true
    (max_of "wcet" < max_of "equal");
  check_bool "wcet max bound beats sharing" true
    (max_of "wcet" < max_of "shared");
  (* The profile-trained MRC allocation cannot prove the spiky task's
     worst case: its rare branch never fires in the profile, so the
     measured curve flattens before the worst-case demand is met. *)
  let spiky =
    List.find
      (fun r -> r.Colcache.Experiments.Wcet_partition.task = "spiky")
      t.Colcache.Experiments.Wcet_partition.rows
  in
  check_bool "mrc starves spiky's worst case" true
    (spiky.Colcache.Experiments.Wcet_partition.mrc
       .Colcache.Experiments.Wcet_partition.bound
    > spiky.Colcache.Experiments.Wcet_partition.wcet
        .Colcache.Experiments.Wcet_partition.bound)

(* --- randomized soundness (the qcheck satellite) -------------------------- *)

let test_qcheck_always_hit_sound =
  QCheck.Test.make ~count:300 ~name:"cache analysis is sound on random programs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match Check.Wcet_diff.run_one ~seed () with
      | Ok () -> true
      | Error detail -> QCheck.Test.fail_reportf "%s" detail)

let suites =
  [
    ( "wcet_analysis",
      [
        Alcotest.test_case "persistent sum loop" `Quick test_persistent_sum;
        Alcotest.test_case "always-hit reload" `Quick test_always_hit_reload;
        Alcotest.test_case "thrash falls back to exec bound" `Quick
          test_thrash_exec_bound;
        Alcotest.test_case "while bounded by persistence" `Quick
          test_while_persistent_bound;
        Alcotest.test_case "zero ways always-miss" `Quick
          test_zero_ways_always_miss;
        Alcotest.test_case "masks partition and taint" `Quick
          test_masks_partition;
        Alcotest.test_case "static analysis exact on constant programs" `Quick
          test_static_analysis_exact_counts;
        Alcotest.test_case "default trip count threaded" `Quick
          test_default_trip_count_threaded;
        Alcotest.test_case "wcet partition figure" `Quick
          test_wcet_partition_figure;
        QCheck_alcotest.to_alcotest test_qcheck_always_hit_sound;
      ] );
    ( "wcet_alloc",
      [
        Alcotest.test_case "min-max allocation" `Quick test_wcet_alloc_min_max;
        Alcotest.test_case "weighted-sum allocation" `Quick
          test_wcet_alloc_weighted_sum;
      ] );
  ]
